package bench

// This file is the post-1999 engine comparison: the value-iteration and
// bound-tightened-bisection engines the repo grew after the DAC'99 study
// (madani for the cycle mean, bhk for the cost-to-time ratio) raced against
// the 1999-era roster on shared instances — howard/karp for the mean,
// howard/sternbrocot for the ratio — with every certified λ*/ρ*
// cross-checked bit-identical. Any disagreement is a Violation and mcmbench
// exits 2, so the recorded BENCH_engines.json doubles as an equivalence
// gate. `mcmbench -table engines-2017 -json > BENCH_engines.json` records
// the sweep; `-quick` is the CI smoke variant.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ratio"
)

// EnginesMeanAlgos is the minimum-cycle-mean side of the comparison: the
// DAC'99 baseline pair plus the Madani value-iteration engine.
var EnginesMeanAlgos = []string{"howard", "karp", "madani"}

// EnginesRatioAlgos is the cost-to-time side: the shared-oracle baselines
// plus the BHK bound-tightened bisection.
var EnginesRatioAlgos = []string{"howard", "sternbrocot", "bhk"}

// EnginesConfig parameterizes RunEnginesSweep.
type EnginesConfig struct {
	// Sizes lists (n, m) pairs; defaults to three SPRAND sizes.
	Sizes [][2]int
	// Seeds is the instance count per size; default 3.
	Seeds int
	// MaxTransit bounds the transit times of the ratio instances; default 8.
	MaxTransit int64
	// Smoke runs the reduced CI variant.
	Smoke bool
	// Progress, when non-nil, receives one line per completed size.
	Progress io.Writer
}

func (c EnginesConfig) withDefaults() EnginesConfig {
	if c.Sizes == nil {
		c.Sizes = [][2]int{{256, 1024}, {512, 2048}, {1024, 4096}}
	}
	if c.Seeds <= 0 {
		c.Seeds = 3
	}
	if c.Smoke {
		c.Sizes = [][2]int{{64, 256}, {128, 512}}
		c.Seeds = 2
	}
	if c.MaxTransit < 1 {
		c.MaxTransit = 8
	}
	return c
}

// EnginesCell is one solver's aggregate over the seeds of one size.
type EnginesCell struct {
	Seconds float64 `json:"seconds"`
	// Iterations counts the engine's outer unit of work: value-iteration
	// passes for madani, probes/pivots for the others.
	Iterations int `json:"iterations"`
	// Checks is the summed NegativeCycleChecks (feasibility probes or
	// contraction epochs), the cross-engine progress measure.
	Checks int `json:"checks"`
}

// EnginesRow is one (n, m) row: the mean race on the raw SPRAND instance
// and the ratio race on its transit-weighted twin.
type EnginesRow struct {
	N         int                    `json:"n"`
	M         int                    `json:"m"`
	MeanCells map[string]EnginesCell `json:"mean_cells"`
	RatioCell map[string]EnginesCell `json:"ratio_cells"`
	// MeanValue and RatioValue are the (seed-0) certified optima as
	// "num/den", fingerprints for the recorded JSON.
	MeanValue  string `json:"mean_value"`
	RatioValue string `json:"ratio_value"`
}

// EnginesReport is a completed sweep.
type EnginesReport struct {
	MeanAlgos  []string `json:"mean_algos"`
	RatioAlgos []string `json:"ratio_algos"`
	Seeds      int      `json:"seeds"`
	MaxTransit int64    `json:"max_transit"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`

	Rows []EnginesRow `json:"rows"`
	// Violations lists every λ*/ρ* disagreement or failed certification;
	// the exact tier has no tolerance, so mcmbench exits 2 when non-empty.
	Violations []string `json:"violations,omitempty"`
}

// JSON renders the report for BENCH_engines.json.
func (r *EnginesReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RunEnginesSweep times each engine with certification on and cross-checks
// the certified optimum bit-identical within each problem's roster.
func RunEnginesSweep(cfg EnginesConfig) (*EnginesReport, error) {
	cfg = cfg.withDefaults()
	rep := &EnginesReport{
		MeanAlgos: EnginesMeanAlgos, RatioAlgos: EnginesRatioAlgos,
		Seeds: cfg.Seeds, MaxTransit: cfg.MaxTransit,
		NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, size := range cfg.Sizes {
		row := EnginesRow{
			N: size[0], M: size[1],
			MeanCells: map[string]EnginesCell{}, RatioCell: map[string]EnginesCell{},
		}
		for seed := 0; seed < cfg.Seeds; seed++ {
			base, err := gen.Sprand(gen.SprandConfig{
				N: size[0], M: size[1], MinWeight: -5000, MaxWeight: 10000, Seed: uint64(seed) + 1,
			})
			if err != nil {
				return nil, err
			}
			arcs := make([]graph.Arc, base.NumArcs())
			state := uint64(seed)*0x9e3779b97f4a7c15 + 7
			for i, a := range base.Arcs() {
				state = state*6364136223846793005 + 1442695040888963407
				a.Transit = 1 + int64((state>>33)%uint64(cfg.MaxTransit))
				arcs[i] = a
			}
			rg := graph.FromArcs(base.NumNodes(), arcs)

			// Mean race on the raw instance.
			var refName, refValue string
			for _, name := range EnginesMeanAlgos {
				algo, err := core.ByName(name)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				res, err := core.MinimumCycleMean(base, algo, core.Options{Certify: true})
				secs := time.Since(start).Seconds()
				if err != nil {
					return nil, fmt.Errorf("bench: engines-2017 mean/%s on n=%d m=%d seed=%d: %w",
						name, size[0], size[1], seed, err)
				}
				cell := row.MeanCells[name]
				cell.Seconds += secs
				cell.Iterations += res.Counts.Iterations
				cell.Checks += res.Counts.NegativeCycleChecks
				row.MeanCells[name] = cell

				value := res.Mean.String()
				switch {
				case !res.Exact || res.Certificate == nil:
					rep.Violations = append(rep.Violations, fmt.Sprintf(
						"n=%d m=%d seed=%d: mean/%s returned an uncertified or inexact result",
						size[0], size[1], seed, name))
				case refName == "":
					refName, refValue = name, value
					if seed == 0 {
						row.MeanValue = value
					}
				case value != refValue:
					rep.Violations = append(rep.Violations, fmt.Sprintf(
						"n=%d m=%d seed=%d: mean/%s says λ* = %s, %s says %s",
						size[0], size[1], seed, name, value, refName, refValue))
				}
			}

			// Ratio race on the transit-weighted twin.
			refName, refValue = "", ""
			for _, name := range EnginesRatioAlgos {
				algo, err := ratio.ByName(name)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				res, err := ratio.MinimumCycleRatio(rg, algo, core.Options{Certify: true})
				secs := time.Since(start).Seconds()
				if err != nil {
					return nil, fmt.Errorf("bench: engines-2017 ratio/%s on n=%d m=%d seed=%d: %w",
						name, size[0], size[1], seed, err)
				}
				cell := row.RatioCell[name]
				cell.Seconds += secs
				cell.Iterations += res.Counts.Iterations
				cell.Checks += res.Counts.NegativeCycleChecks
				row.RatioCell[name] = cell

				value := res.Ratio.String()
				switch {
				case !res.Exact || res.Certificate == nil:
					rep.Violations = append(rep.Violations, fmt.Sprintf(
						"n=%d m=%d seed=%d: ratio/%s returned an uncertified or inexact result",
						size[0], size[1], seed, name))
				case refName == "":
					refName, refValue = name, value
					if seed == 0 {
						row.RatioValue = value
					}
				case value != refValue:
					rep.Violations = append(rep.Violations, fmt.Sprintf(
						"n=%d m=%d seed=%d: ratio/%s says ρ* = %s, %s says %s",
						size[0], size[1], seed, name, value, refName, refValue))
				}
			}
		}
		rep.Rows = append(rep.Rows, row)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "engines-2017: n=%d m=%d done (%d seeds × %d mean + %d ratio engines)\n",
				size[0], size[1], cfg.Seeds, len(EnginesMeanAlgos), len(EnginesRatioAlgos))
		}
	}
	return rep, nil
}

// WriteEngines renders the comparison.
func WriteEngines(w io.Writer, rep *EnginesReport) {
	fmt.Fprintf(w, "engines-2017: post-1999 engines vs the DAC'99 roster on SPRAND (transit ≤ %d, %d seeds)\n",
		rep.MaxTransit, rep.Seeds)
	fmt.Fprintf(w, "%6s %7s", "n", "m")
	for _, name := range rep.MeanAlgos {
		fmt.Fprintf(w, " %14s", "mean/"+name+" (s)")
	}
	for _, name := range rep.RatioAlgos {
		fmt.Fprintf(w, " %16s", "ratio/"+name+" (s)")
	}
	fmt.Fprintln(w)
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%6d %7d", r.N, r.M)
		for _, name := range rep.MeanAlgos {
			fmt.Fprintf(w, " %14.4f", r.MeanCells[name].Seconds)
		}
		for _, name := range rep.RatioAlgos {
			fmt.Fprintf(w, " %16.4f", r.RatioCell[name].Seconds)
		}
		fmt.Fprintln(w)
	}
	for _, v := range rep.Violations {
		fmt.Fprintf(w, "  VIOLATION: %s\n", v)
	}
}
