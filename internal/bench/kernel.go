package bench

// This file is the kernelization experiment harness: it measures the
// internal/prep pipeline end-to-end (kernelized vs raw solves across graph
// families, with the node/arc reduction each family admits) plus the
// core.Session policy warm-start cache on a repeated weight-perturbation
// workload. `mcmbench -table kernel -json > BENCH_kernel.json` records the
// sweep; `make bench-kernel` wires it into the benchmark suite.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prep"
)

// KernelConfig parameterizes RunKernelSweep.
type KernelConfig struct {
	// Seeds is the number of instances per case (default 3).
	Seeds int
	// Reps is the number of timed repetitions per instance; the fastest rep
	// is kept, damping scheduler noise (default 3).
	Reps int
	// Algorithm is the solver raced with and without kernelization
	// (default "howard").
	Algorithm string
	// Progress, when non-nil, receives one line per completed case.
	Progress io.Writer
}

func (c KernelConfig) withDefaults() KernelConfig {
	if c.Seeds <= 0 {
		c.Seeds = 3
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.Algorithm == "" {
		c.Algorithm = "howard"
	}
	return c
}

// KernelRow is one (family, size) aggregate of the kernelization sweep.
type KernelRow struct {
	Family string `json:"family"`
	Name   string `json:"name"`
	Nodes  int    `json:"nodes"`
	Arcs   int    `json:"arcs"`
	// KernelNodes/KernelArcs are the post-reduction totals summed over the
	// graph's cyclic SCCs (kernels the solver actually sees).
	KernelNodes int `json:"kernel_nodes"`
	KernelArcs  int `json:"kernel_arcs"`
	// NodeReduction/ArcReduction are fractions removed (1 = everything).
	NodeReduction float64 `json:"node_reduction"`
	ArcReduction  float64 `json:"arc_reduction"`
	// RawMs/KernelMs are mean per-solve wall times (ms) over the seeds.
	RawMs    float64 `json:"raw_ms"`
	KernelMs float64 `json:"kernel_ms"`
	// Speedup is RawMs / KernelMs.
	Speedup float64 `json:"speedup"`
}

// SessionRow reports the Howard warm-start cache measurement: one structure,
// a stream of weight perturbations, solved cold (cache reset each time) vs
// warm (cache kept).
type SessionRow struct {
	Nodes    int     `json:"nodes"`
	Arcs     int     `json:"arcs"`
	Rounds   int     `json:"rounds"`
	ColdMs   float64 `json:"cold_ms"`
	WarmMs   float64 `json:"warm_ms"`
	Speedup  float64 `json:"speedup"`
	WarmHits int     `json:"warm_hits"`
}

// KernelReport is a completed kernelization sweep.
type KernelReport struct {
	Algorithm  string      `json:"algorithm"`
	NumCPU     int         `json:"num_cpu"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Rows       []KernelRow `json:"rows"`
	Session    *SessionRow `json:"session,omitempty"`
}

// JSON renders the report for BENCH_kernel.json.
func (r *KernelReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// kernelCase is one graph family entry of the sweep.
type kernelCase struct {
	family string
	name   string
	build  func(seed uint64) (*graph.Graph, error)
}

func kernelCases() []kernelCase {
	var cases []kernelCase
	for _, cc := range []struct {
		name string
		cfg  gen.ChainConfig
	}{
		{"chain-small", gen.ChainConfig{CoreN: 16, Chains: 32, ChainLen: 60, MinWeight: 1, MaxWeight: 10000, SelfLoops: 4}},
		{"chain-medium", gen.ChainConfig{CoreN: 32, Chains: 64, ChainLen: 120, MinWeight: 1, MaxWeight: 10000, SelfLoops: 8}},
		{"chain-large", gen.ChainConfig{CoreN: 64, Chains: 128, ChainLen: 200, MinWeight: 1, MaxWeight: 10000, SelfLoops: 16}},
	} {
		cfg := cc.cfg
		cases = append(cases, kernelCase{
			family: "chain", name: cc.name,
			build: func(seed uint64) (*graph.Graph, error) {
				c := cfg
				c.Seed = seed
				return gen.Chain(c)
			},
		})
	}
	for _, sz := range [][2]int{{1024, 2048}, {2048, 4096}, {4096, 8192}} {
		n, m := sz[0], sz[1]
		cases = append(cases, kernelCase{
			family: "sprand", name: fmt.Sprintf("sprand-%d-%d", n, m),
			build: func(seed uint64) (*graph.Graph, error) {
				return gen.Sprand(gen.SprandConfig{N: n, M: m, MinWeight: 1, MaxWeight: 10000, Seed: seed})
			},
		})
	}
	return cases
}

// RunKernelSweep measures kernelized vs raw solves over the chain-heavy and
// SPRAND families plus the Session warm-start workload.
func RunKernelSweep(cfg KernelConfig) (*KernelReport, error) {
	cfg = cfg.withDefaults()
	algo, err := core.ByName(cfg.Algorithm)
	if err != nil {
		return nil, err
	}
	rep := &KernelReport{
		Algorithm:  cfg.Algorithm,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	timeSolve := func(g *graph.Graph, opt core.Options) (time.Duration, error) {
		best := time.Duration(0)
		for i := 0; i < cfg.Reps; i++ {
			start := time.Now()
			if _, err := core.MinimumCycleMean(g, algo, opt); err != nil {
				return 0, err
			}
			if el := time.Since(start); i == 0 || el < best {
				best = el
			}
		}
		return best, nil
	}

	for _, kc := range kernelCases() {
		row := KernelRow{Family: kc.family, Name: kc.name}
		var rawTotal, kernTotal time.Duration
		for seed := 0; seed < cfg.Seeds; seed++ {
			g, err := kc.build(uint64(seed) + 1)
			if err != nil {
				return nil, err
			}
			row.Nodes = g.NumNodes()
			row.Arcs = g.NumArcs()
			// Reduction stats over the cyclic SCCs (what the driver solves).
			kn, ka := 0, 0
			for _, comp := range graph.CyclicComponents(g) {
				k := prep.Kernelize(comp.Graph, prep.Mean)
				if k.Err != nil {
					kn += comp.Graph.NumNodes()
					ka += comp.Graph.NumArcs()
					continue
				}
				kn += k.G.NumNodes()
				ka += k.G.NumArcs()
			}
			row.KernelNodes = kn
			row.KernelArcs = ka

			raw, err := timeSolve(g, core.Options{})
			if err != nil {
				return nil, fmt.Errorf("bench: raw %s on %s seed %d: %w", cfg.Algorithm, kc.name, seed, err)
			}
			kern, err := timeSolve(g, core.Options{Kernelize: true})
			if err != nil {
				return nil, fmt.Errorf("bench: kernelized %s on %s seed %d: %w", cfg.Algorithm, kc.name, seed, err)
			}
			rawTotal += raw
			kernTotal += kern
		}
		s := float64(cfg.Seeds)
		row.RawMs = rawTotal.Seconds() * 1000 / s
		row.KernelMs = kernTotal.Seconds() * 1000 / s
		if row.KernelMs > 0 {
			row.Speedup = row.RawMs / row.KernelMs
		}
		if row.Nodes > 0 {
			row.NodeReduction = 1 - float64(row.KernelNodes)/float64(row.Nodes)
		}
		if row.Arcs > 0 {
			row.ArcReduction = 1 - float64(row.KernelArcs)/float64(row.Arcs)
		}
		rep.Rows = append(rep.Rows, row)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "%-14s raw %8.3fms kern %8.3fms speedup %5.2fx (nodes -%2.0f%% arcs -%2.0f%%)\n",
				kc.name, row.RawMs, row.KernelMs, row.Speedup, 100*row.NodeReduction, 100*row.ArcReduction)
		}
	}

	sess, err := runSessionBench(cfg)
	if err != nil {
		return nil, err
	}
	rep.Session = sess
	if cfg.Progress != nil {
		fmt.Fprintf(cfg.Progress, "session        cold %8.3fms warm %8.3fms speedup %5.2fx\n",
			sess.ColdMs, sess.WarmMs, sess.Speedup)
	}
	return rep, nil
}

// runSessionBench measures core.Session on a weight-perturbation stream.
func runSessionBench(cfg KernelConfig) (*SessionRow, error) {
	base, err := gen.Sprand(gen.SprandConfig{N: 2000, M: 8000, MinWeight: 1, MaxWeight: 10000, Seed: 99})
	if err != nil {
		return nil, err
	}
	const rounds = 12
	stream := make([]*graph.Graph, rounds)
	stream[0] = base
	for r := 1; r < rounds; r++ {
		arcs := append([]graph.Arc(nil), base.Arcs()...)
		for i := range arcs {
			arcs[i].Weight += int64((i*r)%11 - 5)
		}
		stream[r] = graph.FromArcs(base.NumNodes(), arcs)
	}

	row := &SessionRow{Nodes: base.NumNodes(), Arcs: base.NumArcs(), Rounds: rounds}

	cold := core.NewSession(core.Options{})
	start := time.Now()
	for _, g := range stream {
		cold.Reset()
		if _, err := cold.Solve(g); err != nil {
			return nil, err
		}
	}
	row.ColdMs = time.Since(start).Seconds() * 1000 / rounds

	warm := core.NewSession(core.Options{})
	if _, err := warm.Solve(stream[0]); err != nil {
		return nil, err
	}
	start = time.Now()
	for _, g := range stream {
		if _, err := warm.Solve(g); err != nil {
			return nil, err
		}
	}
	row.WarmMs = time.Since(start).Seconds() * 1000 / rounds
	row.WarmHits = warm.Stats().WarmHits
	if row.WarmMs > 0 {
		row.Speedup = row.ColdMs / row.WarmMs
	}
	return row, nil
}

// WriteKernel renders the sweep as a text table.
func WriteKernel(w io.Writer, rep *KernelReport) {
	fmt.Fprintf(w, "Kernelization sweep (algorithm: %s, %d CPUs, GOMAXPROCS %d)\n\n",
		rep.Algorithm, rep.NumCPU, rep.GOMAXPROCS)
	fmt.Fprintf(w, "%-14s %8s %8s %8s %8s %9s %9s %10s %10s %8s\n",
		"case", "nodes", "arcs", "k-nodes", "k-arcs", "node-red", "arc-red", "raw-ms", "kern-ms", "speedup")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%-14s %8d %8d %8d %8d %8.1f%% %8.1f%% %10.3f %10.3f %7.2fx\n",
			r.Name, r.Nodes, r.Arcs, r.KernelNodes, r.KernelArcs,
			100*r.NodeReduction, 100*r.ArcReduction, r.RawMs, r.KernelMs, r.Speedup)
	}
	if rep.Session != nil {
		s := rep.Session
		fmt.Fprintf(w, "\nSession warm-start (n=%d m=%d, %d weight-perturbation rounds):\n", s.Nodes, s.Arcs, s.Rounds)
		fmt.Fprintf(w, "  cold %.3fms/solve   warm %.3fms/solve   speedup %.2fx   (%d cache hits)\n",
			s.ColdMs, s.WarmMs, s.Speedup, s.WarmHits)
	}
}
