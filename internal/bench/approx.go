package bench

// This file is the approximation-tier experiment harness: generator-backed
// streaming solves on graphs far beyond the exact sweeps' sizes, run under a
// measured peak-heap cap, with an exact-vs-approx time/memory/error
// comparison on the sizes where the exact path is still feasible.
// `mcmbench -table approx -json > BENCH_approx.json` records the sweep;
// `mcmbench -table approx -quick` is the CI smoke variant (one 10⁶-arc
// graph, tighter cap). Cap or bound violations are reported in the JSON and
// make mcmbench exit 2.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// ApproxConfig parameterizes RunApproxSweep.
type ApproxConfig struct {
	// Smoke runs the reduced CI variant: one 10⁶-arc SPRAND stream with an
	// exact cross-check, under the tighter smoke cap.
	Smoke bool
	// Epsilon is the requested tolerance (default 0.02).
	Epsilon float64
	// RSSCapBytes bounds the peak in-process heap measured during each
	// streaming solve (default 64 MiB full sweep, 32 MiB smoke). Exceeding it
	// is a violation, not an error — the sweep completes and reports it.
	RSSCapBytes uint64
	// Progress, when non-nil, receives one line per completed case.
	Progress io.Writer
}

func (c ApproxConfig) withDefaults() ApproxConfig {
	if c.Epsilon <= 0 {
		c.Epsilon = 0.02
	}
	if c.RSSCapBytes == 0 {
		if c.Smoke {
			c.RSSCapBytes = 32 << 20
		} else {
			c.RSSCapBytes = 64 << 20
		}
	}
	return c
}

// ApproxRow is one streaming-solve measurement.
type ApproxRow struct {
	Name  string `json:"name"`
	Mode  string `json:"mode"`
	Nodes int    `json:"nodes"`
	Arcs  int    `json:"arcs"`
	// Value is the witness cycle's mean (an upper bound on λ*); ErrorBound
	// the certified interval width: λ* ∈ [Value−ErrorBound, Value].
	Value      float64 `json:"value"`
	ErrorBound float64 `json:"error_bound"`
	// Passes/Rounds are the engine's work measures (arc-stream scans and
	// λ-probe rounds).
	Passes int `json:"passes"`
	Rounds int `json:"rounds"`
	// ApproxMs and PeakHeapBytes describe the streaming solve; the peak is
	// sampled in-process (like the serving suite's streaming probe) and is
	// what the RSS cap is asserted against.
	ApproxMs      float64 `json:"approx_ms"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
	// ExactMs/ExactPeakHeapBytes/ExactValue describe the exact comparison leg
	// (materialize + Howard) on the cases small enough to run it; zero when
	// the case is stream-only.
	ExactMs            float64 `json:"exact_ms,omitempty"`
	ExactPeakHeapBytes uint64  `json:"exact_peak_heap_bytes,omitempty"`
	ExactValue         float64 `json:"exact_value,omitempty"`
	// BoundHolds reports λ* ∈ [Value−ErrorBound, Value] when the exact value
	// is known, and ErrorBound ≤ the mode's promised tolerance always.
	BoundHolds bool `json:"bound_holds"`
}

// ApproxReport is a completed approximation sweep.
type ApproxReport struct {
	Epsilon     float64     `json:"epsilon"`
	RSSCapBytes uint64      `json:"rss_cap_bytes"`
	NumCPU      int         `json:"num_cpu"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	Rows        []ApproxRow `json:"rows"`
	// Violations lists every broken invariant (cap exceeded, bound not met);
	// mcmbench exits 2 when it is non-empty.
	Violations []string `json:"violations,omitempty"`
}

// JSON renders the report for BENCH_approx.json.
func (r *ApproxReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// approxCase is one entry of the sweep: a streaming source plus whether the
// exact path is feasible at this size.
type approxCase struct {
	name  string
	mode  string
	exact bool
	src   graph.ArcSource
}

func approxCases(smoke bool) ([]approxCase, error) {
	sprand := func(n, m int, seed uint64) (graph.ArcSource, error) {
		return gen.NewSprandSource(gen.SprandConfig{N: n, M: m, MinWeight: 1, MaxWeight: 10000, Seed: seed})
	}
	if smoke {
		src, err := sprand(1<<14, 1<<20, 7)
		if err != nil {
			return nil, err
		}
		return []approxCase{{name: "sprand-stream-1m", mode: "chkl", exact: true, src: src}}, nil
	}
	cmp, err := sprand(1<<14, 1<<19, 7)
	if err != nil {
		return nil, err
	}
	cmpAP, err := sprand(1<<14, 1<<19, 7)
	if err != nil {
		return nil, err
	}
	torus, err := gen.NewTorusSource(512, 512, 1, 10000, 11)
	if err != nil {
		return nil, err
	}
	// The flagship: 4.19M arcs, 162× the largest graph of the exact sweeps
	// (chain-large's 25840 arcs), solved without ever materializing.
	flag, err := sprand(1<<17, 1<<22, 7)
	if err != nil {
		return nil, err
	}
	return []approxCase{
		{name: "sprand-exact-compare", mode: "chkl", exact: true, src: cmp},
		{name: "sprand-exact-compare-ap", mode: "ap", exact: true, src: cmpAP},
		{name: "torus-stream", mode: "chkl", src: torus},
		{name: "sprand-stream-4m", mode: "chkl", src: flag},
	}, nil
}

// promisedTolerance is the mode's a-priori bound on the certified interval
// width (what the engine guarantees for a clean return).
func promisedTolerance(mode string, eps, value, absWMax float64) float64 {
	if mode == "ap" {
		return eps * math.Max(1, absWMax)
	}
	return eps * math.Max(1, math.Abs(value))
}

// RunApproxSweep measures the streaming approximation tier over the
// generator families, asserting the peak-heap cap and the certified bounds.
func RunApproxSweep(cfg ApproxConfig) (*ApproxReport, error) {
	cfg = cfg.withDefaults()
	cases, err := approxCases(cfg.Smoke)
	if err != nil {
		return nil, err
	}
	rep := &ApproxReport{
		Epsilon:     cfg.Epsilon,
		RSSCapBytes: cfg.RSSCapBytes,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	howard, err := core.ByName("howard")
	if err != nil {
		return nil, err
	}

	for _, ac := range cases {
		row := ApproxRow{Name: ac.name, Mode: ac.mode, Nodes: ac.src.NumNodes(), Arcs: ac.src.NumArcs()}

		// Streaming leg, under the heap watcher. The GC beforehand gives every
		// case the same baseline so the peak measures this solve, not the
		// previous case's garbage.
		runtime.GC()
		w := watchHeap()
		start := time.Now()
		res, err := core.MinimumCycleMeanStream(ac.src, core.Options{
			Approx: core.ApproxOptions{Epsilon: cfg.Epsilon, Mode: ac.mode},
		})
		row.ApproxMs = time.Since(start).Seconds() * 1000
		row.PeakHeapBytes = w.Peak()
		if err != nil {
			return nil, fmt.Errorf("bench: approx %s: %w", ac.name, err)
		}
		row.Value = res.Mean.Float64()
		row.ErrorBound = res.ErrorBound
		row.Rounds = res.Counts.Iterations
		if row.Arcs > 0 {
			row.Passes = res.Counts.ArcsVisited / row.Arcs
		}

		row.BoundHolds = true
		if tol := promisedTolerance(ac.mode, cfg.Epsilon, row.Value, 10000); row.ErrorBound > tol*(1+1e-9) {
			row.BoundHolds = false
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%s: error bound %g exceeds the promised tolerance %g", ac.name, row.ErrorBound, tol))
		}
		if row.PeakHeapBytes > cfg.RSSCapBytes {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%s: peak heap %d bytes exceeds the %d-byte cap", ac.name, row.PeakHeapBytes, cfg.RSSCapBytes))
		}

		// Exact comparison leg: materialize + Howard, its own heap watch. The
		// memory ratio (ExactPeakHeapBytes / PeakHeapBytes) is the streaming
		// tier's headline.
		if ac.exact {
			runtime.GC()
			we := watchHeap()
			start = time.Now()
			g, err := graph.Materialize(ac.src)
			if err != nil {
				return nil, fmt.Errorf("bench: materialize %s: %w", ac.name, err)
			}
			exact, err := core.MinimumCycleMean(g, howard, core.Options{})
			row.ExactMs = time.Since(start).Seconds() * 1000
			row.ExactPeakHeapBytes = we.Peak()
			if err != nil {
				return nil, fmt.Errorf("bench: exact %s: %w", ac.name, err)
			}
			row.ExactValue = exact.Mean.Float64()
			const slack = 1e-9
			if row.ExactValue > row.Value+slack || row.ExactValue < row.Value-row.ErrorBound-slack {
				row.BoundHolds = false
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("%s: exact λ* %g outside the certified interval [%g, %g]",
						ac.name, row.ExactValue, row.Value-row.ErrorBound, row.Value))
			}
			g = nil
			runtime.GC()
		}

		rep.Rows = append(rep.Rows, row)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "%-24s n=%-8d m=%-8d %8.0fms peak %5.1fMiB value %.3f ±%.3g\n",
				ac.name, row.Nodes, row.Arcs, row.ApproxMs, float64(row.PeakHeapBytes)/(1<<20), row.Value, row.ErrorBound)
		}
	}
	return rep, nil
}

// WriteApprox renders the sweep as a text table in the paper's style.
func WriteApprox(w io.Writer, rep *ApproxReport) {
	fmt.Fprintf(w, "Approximation-tier sweep (epsilon %g, RSS cap %d MiB, %d CPUs, GOMAXPROCS %d)\n\n",
		rep.Epsilon, rep.RSSCapBytes>>20, rep.NumCPU, rep.GOMAXPROCS)
	fmt.Fprintf(w, "%-24s %5s %8s %9s %7s %7s %11s %9s %11s %9s %12s\n",
		"case", "mode", "nodes", "arcs", "passes", "rounds", "approx-ms", "peak-MiB", "exact-ms", "x-MiB", "error-bound")
	for _, r := range rep.Rows {
		exactMs, exactMiB := "-", "-"
		if r.ExactMs > 0 {
			exactMs = fmt.Sprintf("%.0f", r.ExactMs)
			exactMiB = fmt.Sprintf("%.1f", float64(r.ExactPeakHeapBytes)/(1<<20))
		}
		fmt.Fprintf(w, "%-24s %5s %8d %9d %7d %7d %11.0f %9.1f %11s %9s %12.3g\n",
			r.Name, r.Mode, r.Nodes, r.Arcs, r.Passes, r.Rounds,
			r.ApproxMs, float64(r.PeakHeapBytes)/(1<<20), exactMs, exactMiB, r.ErrorBound)
	}
	if len(rep.Violations) > 0 {
		fmt.Fprintf(w, "\nVIOLATIONS:\n")
		for _, v := range rep.Violations {
			fmt.Fprintf(w, "  %s\n", v)
		}
	}
}
