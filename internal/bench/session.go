package bench

// This file is the incremental dynamic-graph experiment harness: one
// long-lived core.DynSession absorbing a perturbation stream over a large
// SPRAND graph, with every post-delta answer timed against — and verified
// bit-identical to — a fresh certified solve of the same content. It is the
// benchmark gate behind the engine's claim: a delta re-solve must be at
// least MinSpeedup× faster than solving cold, or mcmbench exits 2.
// `mcmbench -table session-delta -json > BENCH_session.json` records the
// sweep; `-quick` is the CI smoke variant.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// SessionConfig parameterizes RunSessionDeltaSweep.
type SessionConfig struct {
	// Nodes and Arcs size the seed SPRAND graph; defaults 2000 and 8000.
	Nodes int
	Arcs  int
	// Deltas is the perturbation-stream length; default 200 (60 smoke).
	Deltas int
	// Seed drives both the graph and the delta stream.
	Seed int64
	// MinSpeedup is the gate: total cold time / total incremental time must
	// reach it; default 2.0.
	MinSpeedup float64
	// Smoke runs the reduced CI variant (smaller graph, shorter stream).
	Smoke bool
	// Progress, when non-nil, receives one line every 25 deltas.
	Progress io.Writer
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.Nodes <= 0 {
		c.Nodes = 2000
	}
	if c.Arcs <= 0 {
		c.Arcs = 4 * c.Nodes
	}
	if c.Deltas <= 0 {
		c.Deltas = 200
	}
	if c.Smoke {
		c.Nodes = 600
		c.Arcs = 2400
		c.Deltas = 60
	}
	if c.Seed == 0 {
		c.Seed = 424299
	}
	if c.MinSpeedup <= 0 {
		c.MinSpeedup = 2.0
	}
	return c
}

// SessionDeltaRow is one applied delta's measurement.
type SessionDeltaRow struct {
	Round int    `json:"round"`
	Op    string `json:"op"`
	Kind  string `json:"kind"` // "weight", "structural", or "free"
	// IncrementalMs is the session's apply+re-solve (certified); ColdMs a
	// fresh certified Howard solve of the identical content.
	IncrementalMs float64 `json:"incremental_ms"`
	ColdMs        float64 `json:"cold_ms"`
	// Value is the post-delta λ* as a string ("num/den").
	Value string `json:"value"`
}

// SessionReport is a completed perturbation sweep.
type SessionReport struct {
	Nodes      int     `json:"nodes"`
	Arcs       int     `json:"arcs"`
	Deltas     int     `json:"deltas"`
	Seed       int64   `json:"seed"`
	MinSpeedup float64 `json:"min_speedup"`
	NumCPU     int     `json:"num_cpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`

	// Mix counts the stream composition.
	WeightEdits     int `json:"weight_edits"`
	StructuralEdits int `json:"structural_edits"`
	FreeEdits       int `json:"free_edits"`

	// Aggregate clocks and the headline ratio.
	IncrementalMsTotal float64 `json:"incremental_ms_total"`
	ColdMsTotal        float64 `json:"cold_ms_total"`
	Speedup            float64 `json:"speedup"`

	// Engine is the session's own view of the sweep (warm hits, merges,
	// splits, components re-solved).
	Engine core.DynStats `json:"engine"`

	Rows []SessionDeltaRow `json:"rows"`
	// Violations lists every broken invariant: a λ* mismatch against the
	// fresh solve (correctness) or a missed speedup gate (performance).
	// mcmbench exits 2 when it is non-empty.
	Violations []string `json:"violations,omitempty"`
}

// JSON renders the report for BENCH_session.json.
func (r *SessionReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RunSessionDeltaSweep seeds a DynSession with a SPRAND graph and streams a
// mixed perturbation load through it: ~60% weight edits on live arcs, ~20%
// structural edits inside the cyclic core (arc insertions between random
// nodes, deletions of previously inserted arcs), ~20% free edits (fresh
// nodes and arcs touching them, which lie on no cycle). Every answer is
// verified bit-identical in λ* to a fresh certified solve of the
// materialized content before the clock comparison is trusted.
func RunSessionDeltaSweep(cfg SessionConfig) (*SessionReport, error) {
	cfg = cfg.withDefaults()
	g, err := gen.Sprand(gen.SprandConfig{
		N: cfg.Nodes, M: cfg.Arcs,
		MinWeight: -10000, MaxWeight: 10000,
		Seed: uint64(cfg.Seed),
	})
	if err != nil {
		return nil, err
	}
	howard, err := core.ByName("howard")
	if err != nil {
		return nil, err
	}
	opt := core.Options{Certify: true}
	ds := core.NewDynSession(g, opt)
	if _, err := ds.Solve(); err != nil {
		return nil, fmt.Errorf("bench: seed solve: %w", err)
	}

	rep := &SessionReport{
		Nodes: cfg.Nodes, Arcs: cfg.Arcs, Deltas: cfg.Deltas,
		Seed: cfg.Seed, MinSpeedup: cfg.MinSpeedup,
		NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		Rows: make([]SessionDeltaRow, 0, cfg.Deltas),
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	var inserted []graph.ArcID // structural insertions eligible for deletion
	nodes := cfg.Nodes

	for round := 0; round < cfg.Deltas; round++ {
		var (
			dl   core.Delta
			kind string
		)
		switch p := rng.Intn(10); {
		case p < 6:
			// Weight edit on a random seed arc: the common case the warm
			// path exists for.
			kind = "weight"
			dl = core.Delta{Op: core.DeltaSetWeight,
				Arc:    graph.ArcID(rng.Intn(cfg.Arcs)),
				Weight: int64(rng.Intn(20001) - 10000)}
			rep.WeightEdits++
		case p < 8:
			// Structural edit inside the cyclic core: insert between random
			// existing nodes, or take back an earlier insertion.
			kind = "structural"
			if len(inserted) > 0 && rng.Intn(2) == 0 {
				i := rng.Intn(len(inserted))
				dl = core.Delta{Op: core.DeltaDeleteArc, Arc: inserted[i]}
				inserted = append(inserted[:i], inserted[i+1:]...)
			} else {
				dl = core.Delta{Op: core.DeltaInsertArc,
					From:   graph.NodeID(rng.Intn(cfg.Nodes)),
					To:     graph.NodeID(rng.Intn(cfg.Nodes)),
					Weight: int64(rng.Intn(20001) - 10000), Transit: 1}
			}
			rep.StructuralEdits++
		default:
			// Free edit: a fresh node plus an arc onto it — on no cycle, so
			// the engine must do (nearly) no work.
			kind = "free"
			if rng.Intn(2) == 0 {
				dl = core.Delta{Op: core.DeltaAddNode}
			} else {
				dl = core.Delta{Op: core.DeltaInsertArc,
					From:   graph.NodeID(rng.Intn(nodes)),
					To:     graph.NodeID(rng.Intn(nodes)),
					Weight: int64(rng.Intn(20001) - 10000), Transit: 1}
				// Aim at the most recent fresh node when one exists, keeping
				// the arc out of the seed core.
				if nodes > cfg.Nodes {
					dl.To = graph.NodeID(nodes - 1)
				}
			}
			rep.FreeEdits++
		}

		t0 := time.Now()
		ids, res, err := ds.Update(context.Background(), []core.Delta{dl})
		incMs := float64(time.Since(t0)) / 1e6
		if err != nil {
			return nil, fmt.Errorf("bench: round %d (%s): %w", round, dl.Op, err)
		}
		if dl.Op == core.DeltaAddNode {
			nodes++
		}
		if dl.Op == core.DeltaInsertArc && kind == "structural" {
			inserted = append(inserted, graph.ArcID(ids[0]))
		}

		// Cold leg: fresh certified solve of the identical content; also the
		// correctness oracle for the incremental answer.
		snap, _ := ds.Materialize()
		t1 := time.Now()
		want, err := core.MinimumCycleMean(snap, howard, opt)
		coldMs := float64(time.Since(t1)) / 1e6
		if err != nil {
			return nil, fmt.Errorf("bench: round %d: fresh solve: %w", round, err)
		}
		if res.Mean.Num() != want.Mean.Num() || res.Mean.Den() != want.Mean.Den() {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"round %d (%s): incremental λ* = %s, fresh certified solve says %s",
				round, dl.Op, res.Mean, want.Mean))
		}

		rep.IncrementalMsTotal += incMs
		rep.ColdMsTotal += coldMs
		rep.Rows = append(rep.Rows, SessionDeltaRow{
			Round: round, Op: dl.Op.String(), Kind: kind,
			IncrementalMs: incMs, ColdMs: coldMs, Value: res.Mean.String(),
		})
		if cfg.Progress != nil && (round+1)%25 == 0 {
			fmt.Fprintf(cfg.Progress, "session-delta: %d/%d deltas, speedup so far %.2fx\n",
				round+1, cfg.Deltas, rep.ColdMsTotal/rep.IncrementalMsTotal)
		}
	}

	rep.Engine = ds.Stats()
	if rep.IncrementalMsTotal > 0 {
		rep.Speedup = rep.ColdMsTotal / rep.IncrementalMsTotal
	}
	if rep.Speedup < cfg.MinSpeedup {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"speedup %.2fx below the %.1fx gate (incremental %.1fms vs cold %.1fms over %d deltas)",
			rep.Speedup, cfg.MinSpeedup, rep.IncrementalMsTotal, rep.ColdMsTotal, cfg.Deltas))
	}
	return rep, nil
}

// WriteSessionDelta renders the report as a table.
func WriteSessionDelta(w io.Writer, rep *SessionReport) {
	fmt.Fprintf(w, "session-delta: n=%d m=%d, %d deltas (%d weight / %d structural / %d free), seed %d\n",
		rep.Nodes, rep.Arcs, rep.Deltas, rep.WeightEdits, rep.StructuralEdits, rep.FreeEdits, rep.Seed)
	fmt.Fprintf(w, "  incremental: %8.1f ms total  (%.3f ms/delta)\n",
		rep.IncrementalMsTotal, rep.IncrementalMsTotal/float64(rep.Deltas))
	fmt.Fprintf(w, "  cold:        %8.1f ms total  (%.3f ms/delta)\n",
		rep.ColdMsTotal, rep.ColdMsTotal/float64(rep.Deltas))
	fmt.Fprintf(w, "  speedup:     %.2fx (gate %.1fx)\n", rep.Speedup, rep.MinSpeedup)
	e := rep.Engine
	fmt.Fprintf(w, "  engine: %d component solves (%d warm / %d cold), %d invalidations, %d merges, %d splits, %d live components\n",
		e.Components, e.WarmHits, e.WarmMisses, e.Invalidated, e.Merges, e.Splits, e.LiveComponents)
	for _, v := range rep.Violations {
		fmt.Fprintf(w, "  VIOLATION: %s\n", v)
	}
}
