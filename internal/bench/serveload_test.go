package bench

import (
	"testing"
	"time"
)

// TestRunServeLoadQuick drives a miniature sustained-load run end to end
// (self-hosted servers, real HTTP) and sanity-checks the report shape. The
// full-size suite behind `make bench-serve` asserts the actual speedup; this
// keeps the harness itself under tier-1 test coverage.
func TestRunServeLoadQuick(t *testing.T) {
	rep, err := RunServeLoad(ServeLoadConfig{
		Concurrency:     2,
		Duration:        300 * time.Millisecond,
		BatchSize:       4,
		HotGraphs:       4,
		N:               32,
		M:               96,
		Workers:         2,
		Seed:            7,
		SkipStreamProbe: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 2 {
		t.Fatalf("%d scenarios, want cache-off + cache-on", len(rep.Scenarios))
	}
	for _, sc := range rep.Scenarios {
		if sc.Errors != 0 {
			t.Fatalf("%s: %d errors", sc.Name, sc.Errors)
		}
		if sc.Requests == 0 || sc.Graphs == 0 || sc.GraphsSec <= 0 {
			t.Fatalf("%s: empty measurement: %+v", sc.Name, sc)
		}
		if sc.Latency["count"].(int64) != sc.Requests+sc.Errors {
			t.Fatalf("%s: latency count %v for %d requests", sc.Name, sc.Latency["count"], sc.Requests)
		}
	}
	off, on := rep.Scenarios[0], rep.Scenarios[1]
	if off.Name != "cache-off" || off.Cache != nil {
		t.Fatalf("first scenario %q cache=%+v, want cache-off with no stats", off.Name, off.Cache)
	}
	if on.Name != "cache-on" || on.Cache == nil {
		t.Fatalf("second scenario %q, want cache-on with stats", on.Name)
	}
	if on.Cache.Hits == 0 || on.Cache.Misses == 0 {
		t.Fatalf("cache-on run never exercised the cache: %+v", on.Cache)
	}
	if rep.Speedup <= 0 {
		t.Fatalf("speedup %v not computed", rep.Speedup)
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatal(err)
	}
}

// TestServeStreamProbe runs the bounded-memory probe at full batch size and
// asserts streaming answered every line while holding peak heap at or below
// the buffered path's — the boundedness claim in miniature.
func TestServeStreamProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("probe solves 2×1280 graphs; skipped in -short")
	}
	probe, err := streamProbe(ServeLoadConfig{Workers: 2, Seed: 7}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if probe.StreamResults != probe.Batch {
		t.Fatalf("stream emitted %d of %d results", probe.StreamResults, probe.Batch)
	}
	if probe.Batch < 10*probe.BufferedLimit {
		t.Fatalf("probe batch %d below 10× the buffered limit %d", probe.Batch, probe.BufferedLimit)
	}
	// Allow generous slack for GC timing noise; the claim is that streaming
	// does not pay the buffered path's O(batch) response footprint.
	if probe.HeapRatio > 1.5 {
		t.Fatalf("streaming peak heap %.2fx the buffered path's (buffered %d, stream %d bytes)",
			probe.HeapRatio, probe.BufferedPeakHeap, probe.StreamPeakHeap)
	}
}
