package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteTable2 renders the running-time grid in the layout of the paper's
// Table 2: one row per (n, m), one column per algorithm, times in seconds,
// N/A where the run was skipped for memory or time.
func (r *Report) WriteTable2(w io.Writer) {
	algos := r.Config.Algorithms
	fmt.Fprintf(w, "Table 2 reproduction: mean running time (seconds) over %d SPRAND instances per size\n", r.Config.Seeds)
	fmt.Fprintf(w, "%6s %7s", "n", "m")
	for _, a := range algos {
		fmt.Fprintf(w, " %10s", a)
	}
	fmt.Fprintln(w)
	for i, size := range r.Sizes {
		fmt.Fprintf(w, "%6d %7d", size[0], size[1])
		for _, a := range algos {
			cell := r.Cells[i][a]
			if cell.Skipped {
				fmt.Fprintf(w, " %10s", "N/A")
			} else {
				fmt.Fprintf(w, " %10.4f", cell.Seconds)
			}
		}
		fmt.Fprintln(w)
	}
	if len(r.Mismatches) > 0 {
		fmt.Fprintf(w, "!! %d cross-algorithm mismatches:\n", len(r.Mismatches))
		for _, m := range r.Mismatches {
			fmt.Fprintln(w, "  ", m)
		}
	}
}

// WriteMCMValues renders experiment E-41: the mean λ* per size, showing its
// near-independence from n and inverse relation to density m/n.
func (r *Report) WriteMCMValues(w io.Writer) {
	fmt.Fprintln(w, "E-41: mean minimum cycle mean per size (§4.1: near-constant in n, decreasing in m/n)")
	fmt.Fprintf(w, "%6s %7s %6s %14s\n", "n", "m", "m/n", "mean λ*")
	for i, size := range r.Sizes {
		var cell *Cell
		for _, a := range r.Config.Algorithms {
			if c := r.Cells[i][a]; !c.Skipped && c.Seeds > 0 {
				cell = c
				break
			}
		}
		if cell == nil {
			continue
		}
		fmt.Fprintf(w, "%6d %7d %6.1f %14.4f\n", size[0], size[1],
			float64(size[1])/float64(size[0]), cell.Lambda)
	}
}

// WriteHeapOps renders experiment E-42: KO versus YTO heap-operation
// counts (the YTO savings grow with density, §4.2).
func (r *Report) WriteHeapOps(w io.Writer) {
	fmt.Fprintln(w, "E-42: heap operations, KO vs YTO (§4.2: YTO saves inserts; savings grow with density)")
	fmt.Fprintf(w, "%6s %7s | %10s %10s %10s | %10s %10s %10s | %8s\n",
		"n", "m", "KO ins", "KO min", "KO dec", "YTO ins", "YTO min", "YTO dec", "ins save")
	for i, size := range r.Sizes {
		ko, okKO := r.Cells[i]["ko"]
		yto, okYTO := r.Cells[i]["yto"]
		if !okKO || !okYTO || ko.Skipped || yto.Skipped {
			continue
		}
		save := 0.0
		if ko.Counts.HeapInserts > 0 {
			save = 1 - float64(yto.Counts.HeapInserts)/float64(ko.Counts.HeapInserts)
		}
		fmt.Fprintf(w, "%6d %7d | %10d %10d %10d | %10d %10d %10d | %7.1f%%\n",
			size[0], size[1],
			ko.Counts.HeapInserts, ko.Counts.HeapExtractMins, ko.Counts.HeapDecreaseKeys,
			yto.Counts.HeapInserts, yto.Counts.HeapExtractMins, yto.Counts.HeapDecreaseKeys,
			100*save)
	}
}

// WriteIterations renders experiment E-43: main-loop iteration counts for
// Burns, KO, YTO and Howard, plus HO's terminating level k (§4.3).
func (r *Report) WriteIterations(w io.Writer) {
	fmt.Fprintln(w, "E-43: iteration counts (§4.3: all below n; Howard drastically small; HO's k is its level)")
	names := []string{"burns", "ko", "yto", "howard", "ho"}
	fmt.Fprintf(w, "%6s %7s", "n", "m")
	for _, a := range names {
		fmt.Fprintf(w, " %8s", a)
	}
	fmt.Fprintln(w)
	for i, size := range r.Sizes {
		fmt.Fprintf(w, "%6d %7d", size[0], size[1])
		for _, a := range names {
			cell, ok := r.Cells[i][a]
			if !ok || cell.Skipped || cell.Seeds == 0 {
				fmt.Fprintf(w, " %8s", "N/A")
				continue
			}
			fmt.Fprintf(w, " %8d", cell.Counts.Iterations)
		}
		fmt.Fprintln(w)
	}
}

// WriteKarpVariants renders experiment E-44: arcs visited by Karp vs DG
// (the DG saving) and the Karp2/Karp running-time ratio (§4.4: ≈ 2×).
func (r *Report) WriteKarpVariants(w io.Writer) {
	fmt.Fprintln(w, "E-44: Karp-variant behavior (§4.4: DG saves arc visits; Karp2 ≈ 2× Karp time)")
	fmt.Fprintf(w, "%6s %7s | %12s %12s %9s | %10s %10s %7s\n",
		"n", "m", "karp arcs", "dg arcs", "saved", "karp s", "karp2 s", "ratio")
	for i, size := range r.Sizes {
		karp, okK := r.Cells[i]["karp"]
		dg, okD := r.Cells[i]["dg"]
		karp2, okK2 := r.Cells[i]["karp2"]
		if !okK || !okD || karp.Skipped || dg.Skipped {
			continue
		}
		saved := 0.0
		if karp.Counts.ArcsVisited > 0 {
			saved = 1 - float64(dg.Counts.ArcsVisited)/float64(karp.Counts.ArcsVisited)
		}
		ratio := 0.0
		if okK2 && !karp2.Skipped && karp.Seconds > 0 {
			ratio = karp2.Seconds / karp.Seconds
		}
		fmt.Fprintf(w, "%6d %7d | %12d %12d %8.1f%% | %10.4f %10.4f %7.2f\n",
			size[0], size[1], karp.Counts.ArcsVisited, dg.Counts.ArcsVisited, 100*saved,
			karp.Seconds, karp2.Seconds, ratio)
	}
}

// WriteRanking renders experiment E-45: per-size speed ranks and the
// overall mean rank of each algorithm (§4.5: Howard first by a margin, HO
// second, Lawler last).
func (r *Report) WriteRanking(w io.Writer) {
	fmt.Fprintln(w, "E-45: speed ranking (§4.5); rank 1 = fastest, mean over sizes where the algorithm ran")
	type stat struct {
		name    string
		sumRank float64
		runs    int
	}
	stats := map[string]*stat{}
	for _, a := range r.Config.Algorithms {
		stats[a] = &stat{name: a}
	}
	for i := range r.Sizes {
		type entry struct {
			name string
			sec  float64
		}
		var entries []entry
		for _, a := range r.Config.Algorithms {
			cell := r.Cells[i][a]
			if !cell.Skipped && cell.Seeds > 0 {
				entries = append(entries, entry{a, cell.Seconds})
			}
		}
		sort.Slice(entries, func(x, y int) bool { return entries[x].sec < entries[y].sec })
		for rank, e := range entries {
			stats[e.name].sumRank += float64(rank + 1)
			stats[e.name].runs++
		}
	}
	ordered := make([]*stat, 0, len(stats))
	for _, s := range stats {
		if s.runs > 0 {
			ordered = append(ordered, s)
		}
	}
	sort.Slice(ordered, func(i, j int) bool {
		return ordered[i].sumRank/float64(ordered[i].runs) < ordered[j].sumRank/float64(ordered[j].runs)
	})
	fmt.Fprintf(w, "%10s %10s %6s\n", "algorithm", "mean rank", "sizes")
	for _, s := range ordered {
		fmt.Fprintf(w, "%10s %10.2f %6d\n", s.name, s.sumRank/float64(s.runs), s.runs)
	}
}

// WriteCircuits renders the E-C circuit table.
func WriteCircuits(w io.Writer, cases []CircuitCase, algorithms []string) {
	if algorithms == nil {
		algorithms = Table2Algorithms
	}
	fmt.Fprintln(w, "E-C: clock-period bound on synthetic sequential circuits (latch graphs; seconds)")
	fmt.Fprintf(w, "%-14s %6s %7s %7s %7s %9s", "circuit", "FFs", "gates", "lat n", "lat m", "period")
	for _, a := range algorithms {
		fmt.Fprintf(w, " %10s", a)
	}
	fmt.Fprintln(w)
	for _, c := range cases {
		fmt.Fprintf(w, "%-14s %6d %7d %7d %7d %9.2f", c.Name, c.FFs, c.Gates, c.LatchN, c.LatchM, c.Period)
		for _, a := range algorithms {
			if sec, ok := c.Seconds[a]; ok {
				fmt.Fprintf(w, " %10.4f", sec)
			} else {
				fmt.Fprintf(w, " %10s", "N/A")
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteAll renders every experiment view in order, separated by blank
// lines; the table argument selects one ("table2", "mcm", "heapops",
// "iters", "karp", "ranking", or "all").
func (r *Report) WriteAll(w io.Writer, table string) error {
	views := map[string]func(io.Writer){
		"table2":  r.WriteTable2,
		"mcm":     r.WriteMCMValues,
		"heapops": r.WriteHeapOps,
		"iters":   r.WriteIterations,
		"karp":    r.WriteKarpVariants,
		"ranking": r.WriteRanking,
	}
	if table == "all" {
		for _, name := range []string{"table2", "mcm", "heapops", "iters", "karp", "ranking"} {
			views[name](w)
			fmt.Fprintln(w)
		}
		return nil
	}
	view, ok := views[table]
	if !ok {
		keys := make([]string, 0, len(views))
		for k := range views {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return fmt.Errorf("bench: unknown table %q (known: %s, circuits, all)", table, strings.Join(keys, ", "))
	}
	view(w)
	return nil
}
