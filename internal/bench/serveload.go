package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/servecache"
)

// The sustained-load serving harness behind cmd/mcmbench -serve-load: it
// drives a real mcmd HTTP endpoint (self-hosted on a loopback listener, or
// an external -load-addr server) with a configurable concurrency, duration,
// and hit-ratio mix, and reports throughput plus latency histograms in the
// BENCH_serve.json shape. Self-hosted runs measure the result cache's
// effect directly — the identical workload against a cache-off and a
// cache-on server — and probe the NDJSON streaming path's bounded-memory
// claim with a batch 10× the buffered limit.

// ServeLoadConfig tunes the sustained-load suite.
type ServeLoadConfig struct {
	// Addr targets an already-running server ("host:port"). Empty self-hosts
	// a serve.Server pair (cache off/on) on loopback listeners.
	Addr string
	// Concurrency is the number of concurrent client workers; default 8.
	Concurrency int
	// Duration is the measured wall clock per scenario; default 3s.
	Duration time.Duration
	// HitRatio is the fraction of graphs drawn from the hot pool (repeated
	// content, cacheable); the rest are freshly generated. Default 0.9.
	HitRatio float64
	// BatchSize is the number of graphs per request; default 8.
	BatchSize int
	// HotGraphs is the hot pool size; default 16.
	HotGraphs int
	// N, M size every generated graph; default 384 nodes, 1536 arcs —
	// large enough that solver work (not HTTP/parse overhead) dominates a
	// cache miss.
	N, M int
	// Algorithm names the solver the load mix requests; default "lawler".
	// The default is deliberately not "howard": the serve layer's Session
	// warm-start already absorbs most of a repeated howard solve, so the
	// result cache's marginal win is only visible on solvers without a
	// warm-start shortcut — which is exactly the workload the cache is for.
	Algorithm string
	// Workers configures the self-hosted servers; default NumCPU.
	Workers int
	// Seed makes the workload reproducible.
	Seed uint64
	// SkipStreamProbe disables the streaming memory probe (it is
	// self-host-only: it reads runtime heap stats in-process).
	SkipStreamProbe bool
}

func (c ServeLoadConfig) withDefaults() ServeLoadConfig {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.HitRatio <= 0 {
		c.HitRatio = 0.9
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.HotGraphs <= 0 {
		c.HotGraphs = 16
	}
	if c.N <= 0 {
		c.N = 384
	}
	if c.M <= 0 {
		c.M = 4 * c.N
	}
	if c.Algorithm == "" {
		c.Algorithm = "lawler"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	return c
}

// ServeLoadScenario is one measured load run.
type ServeLoadScenario struct {
	Name        string  `json:"name"`
	Requests    int64   `json:"requests"`
	Graphs      int64   `json:"graphs"`
	Errors      int64   `json:"errors"`
	Seconds     float64 `json:"seconds"`
	RequestsSec float64 `json:"requests_per_sec"`
	GraphsSec   float64 `json:"graphs_per_sec"`
	// Latency is the per-request histogram in the obs snapshot shape
	// (count, mean_ms, max_ms, le_* buckets).
	Latency map[string]any `json:"latency"`
	// Cache is the server's result-cache counters after the run
	// (self-hosted scenarios only).
	Cache *servecache.Stats `json:"cache,omitempty"`
}

// ServeStreamProbe compares peak in-process heap while answering the same
// batch — far beyond the buffered service limit — once buffered (the probe
// server's MaxBatch is raised to admit it) and once streamed. Both legs
// carry identical requests and identical solve work; only the response
// path differs, so the heap gap is exactly the buffered path's
// O(batch)-results footprint that streaming avoids. Bounded streaming
// memory means HeapRatio stays at or below ~1 while the batch is ≥10× the
// service's buffered limit.
type ServeStreamProbe struct {
	// Batch is the graphs per probe request; at least 10× BufferedLimit.
	Batch int `json:"batch"`
	// BufferedLimit is the service's default buffered batch cap.
	BufferedLimit    int     `json:"buffered_limit"`
	BufferedPeakHeap uint64  `json:"buffered_peak_heap_bytes"`
	StreamPeakHeap   uint64  `json:"stream_peak_heap_bytes"`
	HeapRatio        float64 `json:"heap_ratio"`
	StreamResults    int     `json:"stream_results"`
}

// ServeLoadReport is the BENCH_serve.json shape.
type ServeLoadReport struct {
	NumCPU      int                 `json:"num_cpu"`
	GoMaxProcs  int                 `json:"gomaxprocs"`
	Concurrency int                 `json:"concurrency"`
	DurationSec float64             `json:"duration_s"`
	HitRatio    float64             `json:"hit_ratio"`
	BatchSize   int                 `json:"batch_size"`
	GraphNodes  int                 `json:"graph_nodes"`
	GraphArcs   int                 `json:"graph_arcs"`
	Algorithm   string              `json:"algorithm"`
	Scenarios   []ServeLoadScenario `json:"scenarios"`
	// Speedup is cache-on vs cache-off graph throughput (self-hosted runs).
	Speedup float64 `json:"cache_speedup,omitempty"`
	// Stream is the bounded-memory probe (self-hosted runs).
	Stream *ServeStreamProbe `json:"stream,omitempty"`
}

// JSON renders the report indented.
func (r *ServeLoadReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// workload builds the request mix: a pre-rendered hot pool reused across
// requests (the cacheable fraction) and cold graphs generated on demand
// from a monotone seed, so no cold graph ever repeats — the cache-on leg's
// hit rate is exactly the configured HitRatio, never flattered by recycled
// misses. Cold generation runs inside the measured window on both legs
// alike, which dampens the reported speedup slightly (conservative).
type workload struct {
	cfg  ServeLoadConfig
	hot  []string
	seed atomic.Uint64
}

func renderSprand(cfg ServeLoadConfig, seed uint64) (string, error) {
	g, err := gen.Sprand(gen.SprandConfig{
		N: cfg.N, M: cfg.M, MinWeight: -1000, MaxWeight: 1000, Seed: seed,
	})
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := graph.Write(&buf, g); err != nil {
		return "", err
	}
	return buf.String(), nil
}

func newWorkload(cfg ServeLoadConfig) (*workload, error) {
	w := &workload{cfg: cfg}
	for i := 0; i < cfg.HotGraphs; i++ {
		text, err := renderSprand(cfg, cfg.Seed+uint64(i))
		if err != nil {
			return nil, err
		}
		w.hot = append(w.hot, text)
	}
	return w, nil
}

// coldText renders a never-before-seen graph.
func (w *workload) coldText() (string, error) {
	return renderSprand(w.cfg, w.cfg.Seed+1_000_000+w.seed.Add(1))
}

// batch builds one request body: BatchSize graphs, HitRatio of them drawn
// from the hot pool, the rest fresh.
func (w *workload) batch(rng *rand.Rand) (serve.SolveRequest, error) {
	req := serve.SolveRequest{Requests: make([]serve.GraphRequest, w.cfg.BatchSize)}
	for i := range req.Requests {
		var text string
		if rng.Float64() < w.cfg.HitRatio {
			text = w.hot[rng.Intn(len(w.hot))]
		} else {
			var err error
			if text, err = w.coldText(); err != nil {
				return req, err
			}
		}
		req.Requests[i] = serve.GraphRequest{Text: text, Algorithm: w.cfg.Algorithm}
	}
	return req, nil
}

// selfHosted binds a serve.Server to a loopback listener and returns its
// base URL plus a shutdown func.
func selfHosted(cfg ServeLoadConfig, noCache bool) (*serve.Server, string, func(), error) {
	srv := serve.NewServer(serve.Config{
		Workers: cfg.Workers,
		// The admission window must cover the buffered stream-probe batch
		// (64, all-or-nothing) plus the load mix; 256 keeps 429s out of the
		// measurement.
		QueueDepth: 256,
		MaxBatch:   256,
		// The streaming probe posts 640 graphs in one body; keep the byte
		// limit out of the way of the batch limits.
		MaxBodyBytes: 256 << 20,
		NoCache:      noCache,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, err
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	stop := func() { _ = hs.Close() }
	return srv, "http://" + ln.Addr().String(), stop, nil
}

// runScenario drives url with the workload for cfg.Duration and aggregates
// client-observed throughput and latency.
func runScenario(name, url string, w *workload, cfg ServeLoadConfig) (ServeLoadScenario, error) {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Concurrency * 2,
		MaxIdleConnsPerHost: cfg.Concurrency * 2,
	}}
	defer client.CloseIdleConnections()

	var requests, graphs, errs atomic.Int64
	var latency obs.Histogram
	var firstErr atomic.Value

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(cfg.Seed) + int64(c)*7919))
			for time.Now().Before(deadline) {
				req, err := w.batch(rng)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				body, err := json.Marshal(req)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				t0 := time.Now()
				resp, err := client.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				var sr serve.SolveResponse
				decErr := json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				latency.Observe(time.Since(t0))
				if resp.StatusCode != http.StatusOK || decErr != nil {
					errs.Add(1)
					continue
				}
				requests.Add(1)
				graphs.Add(int64(len(sr.Results)))
				for _, res := range sr.Results {
					if !res.OK {
						errs.Add(1)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return ServeLoadScenario{}, fmt.Errorf("%s: %w", name, err)
	}
	return ServeLoadScenario{
		Name:        name,
		Requests:    requests.Load(),
		Graphs:      graphs.Load(),
		Errors:      errs.Load(),
		Seconds:     elapsed,
		RequestsSec: float64(requests.Load()) / elapsed,
		GraphsSec:   float64(graphs.Load()) / elapsed,
		Latency:     latency.Snapshot(),
	}, nil
}

// heapWatcher samples HeapAlloc until stopped and reports the peak.
type heapWatcher struct {
	stop chan struct{}
	done chan uint64
}

func watchHeap() *heapWatcher {
	w := &heapWatcher{stop: make(chan struct{}), done: make(chan uint64, 1)}
	go func() {
		var peak uint64
		var ms runtime.MemStats
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-w.stop:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
				w.done <- peak
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	return w
}

func (w *heapWatcher) Peak() uint64 {
	close(w.stop)
	return <-w.done
}

// streamProbe sends the same large batch (10× the default buffered limit)
// buffered and streamed against a probe server whose MaxBatch admits it,
// recording peak in-process heap for each leg. Graphs are tiny — the
// request body is noise next to the per-result footprint — and both
// responses are discarded without materializing client-side, so the peak
// reflects how the server holds results: all at once (buffered) vs a
// bounded window (streamed).
func streamProbe(cfg ServeLoadConfig) (*ServeStreamProbe, error) {
	const bufferedLimit = 64 // serve.Config.MaxBatch default
	batch := 20 * bufferedLimit

	client := &http.Client{}
	defer client.CloseIdleConnections()

	// Tiny distinct graphs: solve work exists but per-result response
	// memory dominates.
	probeCfg := cfg
	probeCfg.N, probeCfg.M = 8, 24
	req := serve.SolveRequest{Requests: make([]serve.GraphRequest, batch)}
	for i := range req.Requests {
		text, err := renderSprand(probeCfg, cfg.Seed+uint64(5_000_000+i))
		if err != nil {
			return nil, err
		}
		req.Requests[i] = serve.GraphRequest{Text: text}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}

	// discard drains a response counting lines, holding only a fixed chunk.
	discard := func(resp *http.Response) (int, error) {
		defer resp.Body.Close()
		lines := 0
		chunk := make([]byte, 32<<10)
		for {
			n, err := resp.Body.Read(chunk)
			lines += bytes.Count(chunk[:n], []byte("\n"))
			if err != nil {
				if errors.Is(err, io.EOF) {
					return lines, nil
				}
				return lines, err
			}
		}
	}

	probe := &ServeStreamProbe{Batch: batch, BufferedLimit: bufferedLimit}
	for _, leg := range []struct {
		name   string
		suffix string
		// queueDepth shapes the leg's server: the buffered leg needs an
		// admission window covering the whole batch (all-or-nothing
		// admission at streaming scale is exactly what we are costing);
		// the streamed leg keeps the production-default bounded window.
		queueDepth int
		peak       *uint64
		lines      *int
	}{
		{"buffered", "", batch, &probe.BufferedPeakHeap, nil},
		{"streamed", "?stream=1", 0, &probe.StreamPeakHeap, &probe.StreamResults},
	} {
		srv := serve.NewServer(serve.Config{
			Workers:      cfg.Workers,
			QueueDepth:   leg.queueDepth,
			MaxBatch:     batch, // raised so the buffered leg is admitted at all
			MaxBodyBytes: 256 << 20,
			NoCache:      true, // every graph solves on both legs
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: srv}
		go func() { _ = hs.Serve(ln) }()

		runtime.GC()
		hw := watchHeap()
		resp, err := client.Post("http://"+ln.Addr().String()+"/v1/solve"+leg.suffix, "application/json", bytes.NewReader(body))
		if err != nil {
			hs.Close()
			return nil, err
		}
		status := resp.StatusCode
		lines, err := discard(resp)
		*leg.peak = hw.Peak()
		hs.Close()
		if err != nil {
			return nil, fmt.Errorf("stream probe %s leg: %w", leg.name, err)
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("stream probe %s leg: status %d", leg.name, status)
		}
		if leg.lines != nil {
			*leg.lines = lines - 1 // minus the trailer
			if *leg.lines != batch {
				return nil, fmt.Errorf("stream probe: %d result lines, want %d", *leg.lines, batch)
			}
		}
	}
	if probe.BufferedPeakHeap > 0 {
		probe.HeapRatio = float64(probe.StreamPeakHeap) / float64(probe.BufferedPeakHeap)
	}
	return probe, nil
}

// RunServeLoad runs the sustained-load suite. With cfg.Addr set it measures
// that one external server; otherwise it self-hosts a cache-off and a
// cache-on server, reports both scenarios, their speedup, and the streaming
// memory probe.
func RunServeLoad(cfg ServeLoadConfig) (*ServeLoadReport, error) {
	cfg = cfg.withDefaults()
	w, err := newWorkload(cfg)
	if err != nil {
		return nil, err
	}
	rep := &ServeLoadReport{
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Concurrency: cfg.Concurrency,
		DurationSec: cfg.Duration.Seconds(),
		HitRatio:    cfg.HitRatio,
		BatchSize:   cfg.BatchSize,
		GraphNodes:  cfg.N,
		GraphArcs:   cfg.M,
		Algorithm:   cfg.Algorithm,
	}

	if cfg.Addr != "" {
		sc, err := runScenario("external", "http://"+cfg.Addr, w, cfg)
		if err != nil {
			return nil, err
		}
		rep.Scenarios = append(rep.Scenarios, sc)
		return rep, nil
	}

	for _, leg := range []struct {
		name    string
		noCache bool
	}{
		{"cache-off", true},
		{"cache-on", false},
	} {
		srv, url, stop, err := selfHosted(cfg, leg.noCache)
		if err != nil {
			return nil, err
		}
		sc, err := runScenario(leg.name, url, w, cfg)
		stop()
		if err != nil {
			return nil, err
		}
		if stats, ok := srv.CacheStats(); ok {
			sc.Cache = &stats
		}
		rep.Scenarios = append(rep.Scenarios, sc)
	}
	if off, on := rep.Scenarios[0].GraphsSec, rep.Scenarios[1].GraphsSec; off > 0 {
		rep.Speedup = on / off
	}

	if !cfg.SkipStreamProbe {
		probe, err := streamProbe(cfg)
		if err != nil {
			return nil, err
		}
		rep.Stream = probe
	}
	return rep, nil
}
