package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunHeapKinds(t *testing.T) {
	rows, err := RunHeapKinds([][2]int{{64, 192}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // ko and yto
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		for _, kind := range []string{"fibonacci", "binary", "pairing"} {
			if r.Seconds[kind] <= 0 {
				t.Errorf("%s/%s: no time recorded", r.Algorithm, kind)
			}
		}
	}
	var buf bytes.Buffer
	WriteHeapKinds(&buf, rows)
	if !strings.Contains(buf.String(), "fibonacci") {
		t.Error("heap table missing header")
	}
}

func TestRunVariants(t *testing.T) {
	rows, err := RunVariants([][2]int{{64, 192}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	for _, name := range []string{"karp", "karp2", "dg", "dg2", "ho", "ho2"} {
		if rows[0].Seconds[name] <= 0 {
			t.Errorf("%s: no time recorded", name)
		}
	}
	var buf bytes.Buffer
	WriteVariants(&buf, rows)
	if !strings.Contains(buf.String(), "ratio") {
		t.Error("variants table missing ratios")
	}
}

func TestRunRatioTable(t *testing.T) {
	rows, err := RunRatioTable([][2]int{{48, 144}}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Mismatch != "" {
		t.Fatalf("mismatch: %s", rows[0].Mismatch)
	}
	for _, name := range []string{"howard", "megiddo", "lawler", "burns", "ko", "yto", "dinkelbach"} {
		if rows[0].Seconds[name] <= 0 {
			t.Errorf("%s: no time recorded", name)
		}
	}
	var buf bytes.Buffer
	WriteRatioTable(&buf, rows)
	if !strings.Contains(buf.String(), "megiddo") {
		t.Error("ratio table missing header")
	}
}
