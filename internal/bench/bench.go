// Package bench is the experiment harness that regenerates the paper's
// tables: it sweeps the SPRAND grid of Table 2 (and the circuit family of
// the companion tech report), runs every algorithm on every instance,
// cross-checks that all algorithms agree exactly, and renders the
// per-experiment views (running times, iteration counts, heap operations,
// Karp-variant arc counts, MCM values, ranking). cmd/mcmbench and the
// root-level testing.B benchmarks are both thin wrappers over this package.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/gen"
	"repro/internal/numeric"
	"repro/internal/obs"
)

// Table2Algorithms are the paper's Table 2 columns, in the paper's order.
var Table2Algorithms = []string{
	"burns", "ko", "yto", "howard", "ho", "karp", "dg", "lawler", "karp2", "oa1",
}

// Config parameterizes a sweep.
type Config struct {
	// Sizes is the (n, m) grid; nil selects the paper's full Table 2 grid.
	Sizes [][2]int
	// Seeds is the number of SPRAND instances per size (the paper used 10).
	Seeds int
	// Algorithms lists the algorithm names to run; nil selects the paper's
	// Table 2 columns.
	Algorithms []string
	// MinWeight/MaxWeight is the arc weight interval (paper: [1, 10000]).
	MinWeight, MaxWeight int64
	// Timeout: once an algorithm exceeds it on some size, larger n are
	// skipped for that algorithm ("N/A", like the paper's one-day cutoff).
	Timeout time.Duration
	// MemLimit bounds the Θ(n²) D-table of the Karp-family algorithms;
	// sizes whose table would not fit are skipped ("N/A", reproducing the
	// paper's out-of-memory entries on its 64 MB machine). Zero = 256 MiB.
	MemLimit int64
	// Verify enables the exact cross-check that all algorithms agree and
	// every returned cycle is optimal.
	Verify bool
	// Parallelism is the number of seed instances evaluated concurrently
	// within each size (0 or 1 = sequential, negative = NumCPU). Outcomes
	// are aggregated in seed order after the fan-out joins, so the report —
	// cell sums, verify mismatches, progress lines — is byte-identical to a
	// sequential sweep; only wall-clock timing of individual runs varies.
	Parallelism int
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
	// Tracer, when non-nil, receives an obs solve event for every per-seed
	// solver run (cmd/mcmbench -serve aggregates these into live expvar
	// metrics). With Parallelism > 1 the hooks are called concurrently, so
	// the tracer must be safe for concurrent use (obs.Metrics is). Timings
	// are unaffected: the solver's nil-tracer fast path is only left when a
	// tracer is actually installed.
	Tracer *obs.Trace
}

func (c Config) withDefaults() Config {
	if c.Sizes == nil {
		c.Sizes = gen.Table2Sizes()
	}
	if c.Seeds == 0 {
		c.Seeds = 10
	}
	if c.Algorithms == nil {
		c.Algorithms = Table2Algorithms
	}
	if c.MinWeight == 0 && c.MaxWeight == 0 {
		c.MinWeight, c.MaxWeight = 1, 10000
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MemLimit == 0 {
		c.MemLimit = 256 << 20
	}
	return c
}

// quadraticSpace lists the algorithms whose D table needs Θ(n²) memory.
var quadraticSpace = map[string]bool{"karp": true, "dg": true, "ho": true}

// Cell is one (size, algorithm) aggregate over all seeds.
type Cell struct {
	N, M      int
	Algorithm string
	// Seconds is the mean wall time per instance.
	Seconds float64
	// Skipped marks an N/A entry; Reason says why ("memory", "time").
	Skipped bool
	Reason  string
	// Counts is the mean operation counts per instance.
	Counts counter.Counts
	// Lambda is the mean λ* over the seeds (float; the per-seed values are
	// exact rationals).
	Lambda float64
	// Seeds is the number of instances aggregated.
	Seeds int
}

// Report holds a completed sweep.
type Report struct {
	Config Config
	Sizes  [][2]int
	// Cells[size index][algorithm name]
	Cells []map[string]*Cell
	// Mismatches records any cross-algorithm disagreement (must be empty).
	Mismatches []string
}

// Run executes the sweep.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Config: cfg, Sizes: cfg.Sizes}

	// timedOutAt[algo] = smallest n at which the algorithm exceeded the
	// timeout; larger n are skipped.
	timedOutAt := map[string]int{}

	for _, size := range cfg.Sizes {
		n, m := size[0], size[1]
		cells := make(map[string]*Cell, len(cfg.Algorithms))
		for _, name := range cfg.Algorithms {
			cells[name] = &Cell{N: n, M: m, Algorithm: name}
		}
		rep.Cells = append(rep.Cells, cells)

		// Skip decisions depend only on smaller sizes (timedOutAt) and on
		// static memory bounds, so they are fixed up front for the whole
		// size; the remaining algorithms run on every seed.
		run := make([]string, 0, len(cfg.Algorithms))
		for _, name := range cfg.Algorithms {
			cell := cells[name]
			if quadraticSpace[name] && int64(n+1)*int64(n)*8 > cfg.MemLimit {
				cell.Skipped, cell.Reason = true, "memory"
				continue
			}
			if bad, ok := timedOutAt[name]; ok && n > bad {
				cell.Skipped, cell.Reason = true, "time"
				continue
			}
			run = append(run, name)
		}
		algos := make([]core.Algorithm, len(run))
		for i, name := range run {
			algo, err := core.ByName(name)
			if err != nil {
				return nil, err
			}
			algos[i] = algo
		}

		// Fan the seeds out to a bounded worker pool (each worker owns its
		// seed's outcome slot — no shared accumulation), then aggregate in
		// seed order below so the sums match a sequential sweep exactly.
		type outcome struct {
			elapsed time.Duration
			res     core.Result
		}
		outs := make([][]outcome, cfg.Seeds)
		errs := make([]error, cfg.Seeds)
		solveSeed := func(seed int) {
			g, err := gen.Sprand(gen.SprandConfig{
				N: n, M: m, MinWeight: cfg.MinWeight, MaxWeight: cfg.MaxWeight,
				Seed: uint64(seed) + 1,
			})
			if err != nil {
				errs[seed] = err
				return
			}
			row := make([]outcome, len(algos))
			for i, algo := range algos {
				start := time.Now()
				res, err := algo.Solve(g, core.Options{Tracer: cfg.Tracer})
				elapsed := time.Since(start)
				if err != nil {
					errs[seed] = fmt.Errorf("bench: %s on n=%d m=%d seed=%d: %w", run[i], n, m, seed, err)
					return
				}
				row[i] = outcome{elapsed, res}
			}
			outs[seed] = row
		}
		if workers := benchWorkers(cfg.Parallelism, cfg.Seeds); workers > 1 {
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						seed := int(next.Add(1)) - 1
						if seed >= cfg.Seeds {
							return
						}
						solveSeed(seed)
					}
				}()
			}
			wg.Wait()
		} else {
			for seed := 0; seed < cfg.Seeds; seed++ {
				solveSeed(seed)
			}
		}

		for seed := 0; seed < cfg.Seeds; seed++ {
			if errs[seed] != nil {
				return nil, errs[seed]
			}
			var ref numeric.Rat
			haveRef := false
			for i, name := range run {
				o := outs[seed][i]
				cell := cells[name]
				cell.Seconds += o.elapsed.Seconds()
				cell.Counts.Add(o.res.Counts)
				cell.Lambda += o.res.Mean.Float64()
				cell.Seeds++
				if o.elapsed > cfg.Timeout {
					if prev, ok := timedOutAt[name]; !ok || n < prev {
						timedOutAt[name] = n
					}
				}
				if cfg.Verify {
					if !haveRef {
						ref, haveRef = o.res.Mean, true
					} else if !o.res.Mean.Equal(ref) {
						rep.Mismatches = append(rep.Mismatches,
							fmt.Sprintf("n=%d m=%d seed=%d: %s returned %v, reference %v", n, m, seed, name, o.res.Mean, ref))
					}
				}
				if cfg.Progress != nil {
					fmt.Fprintf(cfg.Progress, "n=%5d m=%6d seed=%2d %-7s %10.3fms\n",
						n, m, seed, name, o.elapsed.Seconds()*1000)
				}
			}
		}
		// Finalize means.
		for _, cell := range cells {
			if cell.Seeds > 0 {
				s := float64(cell.Seeds)
				cell.Seconds /= s
				cell.Lambda /= s
				cell.Counts = scaleCounts(cell.Counts, cell.Seeds)
			}
		}
	}
	return rep, nil
}

// benchWorkers resolves Config.Parallelism against the seed count.
func benchWorkers(parallelism, seeds int) int {
	if parallelism < 0 {
		parallelism = runtime.NumCPU()
	}
	if parallelism < 1 {
		parallelism = 1
	}
	if parallelism > seeds {
		parallelism = seeds
	}
	return parallelism
}

func scaleCounts(c counter.Counts, by int) counter.Counts {
	c.Iterations /= by
	c.Relaxations /= by
	c.ArcsVisited /= by
	c.HeapInserts /= by
	c.HeapExtractMins /= by
	c.HeapDecreaseKeys /= by
	c.HeapDeletes /= by
	c.CyclesExamined /= by
	c.NegativeCycleChecks /= by
	return c
}

// CircuitCase is one synthetic-circuit experiment instance.
type CircuitCase struct {
	Name    string
	FFs     int
	Gates   int
	LatchN  int
	LatchM  int
	Seconds map[string]float64
	Period  float64
}

// RunCircuits generates a family of synthetic sequential circuits,
// extracts their latch graphs and times every algorithm computing the
// clock-period bound (maximum cycle mean). This regenerates the benchmark-
// circuit experiment the paper defers to its tech report (E-C).
func RunCircuits(algorithms []string, seeds int) ([]CircuitCase, error) {
	if algorithms == nil {
		algorithms = Table2Algorithms
	}
	if seeds <= 0 {
		seeds = 3
	}
	type circuitSpec struct {
		name string
		gen  func(seed uint64) (*circuit.Netlist, error)
		ffs  int
	}
	specs := []circuitSpec{}
	for _, cfg := range []circuit.GenConfig{
		{FFs: 32, CloudGates: 24, MaxFanin: 3, Feedback: 8, PIs: 6},
		{FFs: 128, CloudGates: 30, MaxFanin: 4, Feedback: 24, PIs: 10},
		{FFs: 512, CloudGates: 24, MaxFanin: 4, Feedback: 64, PIs: 16},
		{FFs: 1024, CloudGates: 16, MaxFanin: 3, Feedback: 128, PIs: 24},
	} {
		cfg := cfg
		specs = append(specs, circuitSpec{
			name: fmt.Sprintf("synth-ff%d", cfg.FFs),
			ffs:  cfg.FFs,
			gen: func(seed uint64) (*circuit.Netlist, error) {
				c := cfg
				c.Seed = seed
				return circuit.Generate(c)
			},
		})
	}
	// Deep pipelines: the chain-like texture of the real MCNC circuits, on
	// which DG's unfolding advantage shows (see EXPERIMENTS.md, E-C).
	for _, stages := range []int{128, 512} {
		stages := stages
		specs = append(specs, circuitSpec{
			name: fmt.Sprintf("pipeline-%d", stages),
			ffs:  stages,
			gen: func(seed uint64) (*circuit.Netlist, error) {
				return circuit.GeneratePipeline(stages, 8, seed)
			},
		})
	}

	var cases []CircuitCase
	for _, spec := range specs {
		cc := CircuitCase{
			Name:    spec.name,
			FFs:     spec.ffs,
			Seconds: make(map[string]float64),
		}
		for seed := 0; seed < seeds; seed++ {
			nl, err := spec.gen(uint64(seed) + 1)
			if err != nil {
				return nil, err
			}
			_, _, _, comb := nl.Counts()
			cc.Gates += comb
			lg, err := circuit.LatchGraph(nl)
			if err != nil {
				return nil, err
			}
			neg := lg.NegateWeights() // maximum mean via negation
			cc.LatchN += lg.NumNodes()
			cc.LatchM += lg.NumArcs()
			for _, name := range algorithms {
				algo, err := core.ByName(name)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				res, err := core.MinimumCycleMean(neg, algo, core.Options{})
				if err != nil {
					return nil, fmt.Errorf("bench: %s on circuit %s seed %d: %w", name, cc.Name, seed, err)
				}
				cc.Seconds[name] += time.Since(start).Seconds()
				if name == "howard" {
					cc.Period += -res.Mean.Float64()
				}
			}
		}
		s := float64(seeds)
		cc.Gates = int(float64(cc.Gates) / s)
		cc.LatchN = int(float64(cc.LatchN) / s)
		cc.LatchM = int(float64(cc.LatchM) / s)
		cc.Period /= s
		for k := range cc.Seconds {
			cc.Seconds[k] /= s
		}
		cases = append(cases, cc)
	}
	return cases, nil
}
