// Package approx implements the approximation tier for the minimum
// cycle-mean problem: solvers that trade the exact algorithms' O(nm) time
// and materialized-CSR memory for near-linear passes over a streaming
// graph.ArcSource, never holding more than O(n) working state. Two schemes
// are provided behind one engine:
//
//   - ModeCHKL: a (1+ε)-style relative scheme in the spirit of
//     Chatterjee–Henzinger–Krinninger–Loitzenbauer ("Approximating the
//     minimum cycle mean"): hard-min value iteration inside a λ-bisection,
//     stopping when the certified interval is within ε·max(1, |λ*|).
//   - ModeAP: an additive-ε scheme in the spirit of Altschuler–Parrilo
//     ("Approximating Min-Mean-Cycle for low-diameter graphs in
//     near-optimal time and memory"): the same bisection driven by entropic
//     (softmin) smoothed iterations with β annealing, stopping at
//     ε·max(1, W) where W is the largest weight magnitude.
//
// Everything the engine reports is certified independently of the iteration
// dynamics, so the smoothed mode cannot compromise soundness:
//
//   - Lower bounds come from arc slacks. For ANY potential vector x, every
//     cycle C satisfies mean(C) = (Σ_{a∈C} w(a) + x[from]−x[to]) / |C| ≥
//     min_a (w(a) + x[from] − x[to]) by telescoping, so the minimum slack
//     observed over a consistent snapshot of x (the engine double-buffers
//     exactly for this) minus a floating-point safety margin is a valid
//     bound λ* ≥ Lower no matter how x was produced.
//   - Upper bounds come from actual cycles harvested out of the parent
//     pointers, with their means evaluated in exact int64/rational
//     arithmetic (|w| ≤ 2³¹−1 and |C| ≤ n ≤ 2²⁶ keep Σw within int64).
//
// The package deliberately depends only on graph and numeric —
// internal/core adapts it into the algorithm registry as "approx" and adds
// the optional Lawler exact-sharpening pass on top of the ε-interval.
package approx

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/numeric"
)

// Modes of the approximation engine.
const (
	// ModeCHKL is relative-error: the result interval satisfies
	// Upper−Lower ≤ ε·max(1, |Upper|).
	ModeCHKL = "chkl"
	// ModeAP is additive-error with entropic smoothing: the interval
	// satisfies Upper−Lower ≤ ε·max(1, W), W = max |weight|.
	ModeAP = "ap"
)

var (
	// ErrAcyclic reports that the presented graph has no cycle at all, so
	// no cycle mean exists.
	ErrAcyclic = errors.New("approx: graph is acyclic")
	// ErrPassLimit reports that the pass budget (or float resolution) ran
	// out before the requested tolerance was certified. The Result
	// returned alongside it still carries valid partial bounds whenever a
	// cycle was found.
	ErrPassLimit = errors.New("approx: pass budget exhausted before reaching the requested tolerance")
	// ErrWeightRange reports an arc weight outside ±(2³¹−1), the same
	// range the exact solvers enforce; beyond it the engine's float64
	// bookkeeping and int64 cycle sums lose their safety margins.
	ErrWeightRange = errors.New("approx: arc weight outside ±(2^31-1)")
)

// maxWeight mirrors the exact solvers' weight-range contract.
const maxWeight = 1<<31 - 1

// DefaultMaxPasses bounds the total number of arc-stream passes across all
// bisection rounds when Config.MaxPasses is zero. Value iteration needs
// roughly graph-diameter passes per round, so the default comfortably
// covers the low-diameter families the approximation tier targets while
// keeping adversarial inputs from running forever.
const DefaultMaxPasses = 1 << 14

// Config parameterizes one approximate solve.
type Config struct {
	// Epsilon is the requested tolerance; must be > 0 (exact answers are
	// the adapter's job, via sharpening). Interpretation depends on Mode.
	Epsilon float64
	// Mode is ModeCHKL (default when empty) or ModeAP.
	Mode string
	// MaxPasses caps total arc-stream passes; 0 means DefaultMaxPasses.
	MaxPasses int
	// Checkpoint, when non-nil, is called once per pass; a non-nil return
	// aborts the solve and is propagated verbatim (cancellation hook).
	Checkpoint func() error
}

// Result is the certified outcome of an approximate solve: the true
// minimum cycle mean λ* lies in [Lower, Mean] (Mean is the exact rational
// mean of the witness Cycle), and ErrorBound ≥ Mean−λ* bounds how far the
// reported value can sit above the truth.
type Result struct {
	// Mean is the exact mean of Cycle, a real cycle of the input: a
	// certified upper bound on λ* and the reported approximate value.
	Mean numeric.Rat
	// Cycle is the witness cycle, as stream arc IDs in forward order.
	Cycle []graph.ArcID
	// Lower is the certified lower bound: λ* ≥ Lower.
	Lower float64
	// ErrorBound bounds the reported value's distance above λ*.
	ErrorBound float64
	// Passes counts full arc-stream sweeps, Rounds bisection probes, and
	// Improvements node-potential decreases, for counter mapping.
	Passes, Rounds int
	Improvements   int
}

// MinCycleMean approximates the minimum cycle mean of src to cfg's
// tolerance. Working memory is O(n) — the source is scanned, never stored.
// On ErrPassLimit the returned Result still holds the best certified
// bounds reached (Cycle is nil if no cycle was ever harvested); on any
// other error the Result is zero.
func MinCycleMean(src graph.ArcSource, cfg Config) (Result, error) {
	if cfg.Epsilon <= 0 {
		return Result{}, fmt.Errorf("approx: epsilon must be > 0, got %v", cfg.Epsilon)
	}
	switch cfg.Mode {
	case "", ModeCHKL, ModeAP:
	default:
		return Result{}, fmt.Errorf("approx: unknown mode %q", cfg.Mode)
	}
	if cfg.MaxPasses <= 0 {
		cfg.MaxPasses = DefaultMaxPasses
	}
	e := &engine{src: src, cfg: cfg, soft: cfg.Mode == ModeAP}
	if err := e.prescan(); err != nil {
		return Result{}, err
	}
	if e.n == 0 || e.m == 0 {
		return Result{}, ErrAcyclic
	}
	e.alloc()

	// Certified trivially: every cycle mean is at least the minimum weight.
	e.lower = float64(e.minW)
	e.upperF = math.Inf(1)
	if e.soft {
		// β sized so the smoothing gap ln(indegree)/β stays ≤ tol/4 and
		// bisection keeps making progress without annealing in the common
		// case.
		e.beta = 4 * math.Log(float64(e.n)+2) / e.tolerance()
		if e.beta < 1e-9 {
			e.beta = 1e-9
		}
	}

	// First probe strictly above every weight: all modified arc weights are
	// negative, so a fixed point certifies λ* > maxW — impossible for a
	// graph with any cycle — and otherwise the diverging potentials hand us
	// a first witness cycle.
	lambda := float64(e.maxW) + 1
	for {
		e.rounds++
		err := e.round(lambda)
		if err != nil {
			if errors.Is(err, ErrPassLimit) {
				return e.result(), err
			}
			return Result{}, err
		}
		if !e.haveUpper {
			return Result{}, ErrAcyclic
		}
		if e.upperF-e.lower <= e.tolerance() {
			return e.result(), nil
		}
		mid := e.lower + (e.upperF-e.lower)/2
		if !(mid > e.lower && mid < e.upperF) {
			// Float resolution exhausted short of the tolerance (can only
			// happen for extreme ε on extreme magnitudes).
			return e.result(), ErrPassLimit
		}
		lambda = mid
	}
}

// engine holds the O(n) working state of one solve.
type engine struct {
	src graph.ArcSource
	cfg Config

	n, m       int
	minW, maxW int64
	absWMax    float64

	xOld, xNew []float64
	parent     []graph.NodeID
	parentArc  []graph.ArcID
	parentW    []int64
	stamp      []int32
	stampGen   int32
	cycleBuf   []graph.ArcID

	soft           bool
	beta           float64
	accM, accS     []float64
	accCnt         []int32
	maxIndeg       int32
	lower, upperF  float64
	haveUpper      bool
	bestMean       numeric.Rat
	bestCycle      []graph.ArcID
	passes, rounds int
	improvements   int
	maxAbsX        float64
	argImp         graph.NodeID // biggest-improvement node of the last pass, -1 if none
}

// prescan validates the source (endpoint ranges, weight range, arc count)
// and records the weight extremes; one full pass, O(1) memory.
func (e *engine) prescan() error {
	e.n = e.src.NumNodes()
	e.m = e.src.NumArcs()
	if e.n < 0 || e.m < 0 {
		return fmt.Errorf("approx: source reports negative dimensions %dx%d", e.n, e.m)
	}
	e.minW, e.maxW = math.MaxInt64, math.MinInt64
	seen := 0
	var scanErr error
	err := e.src.Scan(func(id graph.ArcID, a graph.Arc) bool {
		if a.From < 0 || int(a.From) >= e.n || a.To < 0 || int(a.To) >= e.n {
			scanErr = fmt.Errorf("approx: arc %d endpoint (%d,%d) out of range for n=%d", id, a.From, a.To, e.n)
			return false
		}
		if a.Weight > maxWeight || a.Weight < -maxWeight {
			scanErr = ErrWeightRange
			return false
		}
		if a.Weight < e.minW {
			e.minW = a.Weight
		}
		if a.Weight > e.maxW {
			e.maxW = a.Weight
		}
		seen++
		return true
	})
	if err != nil {
		return err
	}
	if scanErr != nil {
		return scanErr
	}
	if seen != e.m {
		return fmt.Errorf("approx: source promised %d arcs, scanned %d", e.m, seen)
	}
	if e.m > 0 {
		a := math.Abs(float64(e.minW))
		if b := math.Abs(float64(e.maxW)); b > a {
			a = b
		}
		e.absWMax = a
	}
	return nil
}

func (e *engine) alloc() {
	e.xOld = make([]float64, e.n)
	e.xNew = make([]float64, e.n)
	e.parent = make([]graph.NodeID, e.n)
	e.parentArc = make([]graph.ArcID, e.n)
	e.parentW = make([]int64, e.n)
	e.stamp = make([]int32, e.n)
	for i := range e.parent {
		e.parent[i] = -1
	}
	if e.soft {
		e.accM = make([]float64, e.n)
		e.accS = make([]float64, e.n)
		e.accCnt = make([]int32, e.n)
	}
}

// tolerance returns the mode's target interval width for the current state.
func (e *engine) tolerance() float64 {
	switch {
	case e.soft:
		ref := e.absWMax
		if ref < 1 {
			ref = 1
		}
		return e.cfg.Epsilon * ref
	default:
		ref := 1.0
		if e.haveUpper {
			if u := math.Abs(e.upperF); u > ref {
				ref = u
			}
		}
		return e.cfg.Epsilon * ref
	}
}

// delta is the floating-point safety margin subtracted from slack-derived
// lower bounds: a handful of roundings each bounded by the magnitudes that
// entered the arithmetic.
func (e *engine) delta() float64 {
	const eps = 2.220446049250313e-16
	return 8 * eps * (e.absWMax + 2*e.maxAbsX + 1)
}

// round probes one trial λ, running passes until the probe is resolved:
// either the slack bound certifies λ* ≳ λ (lower side) or a harvested cycle
// certifies λ* < λ (upper side). Warm-started: potentials persist across
// rounds, which is sound because every bound is snapshot-certified.
func (e *engine) round(lambda float64) error {
	for {
		improved, minSlack, maxCnt, err := e.pass(lambda)
		if err != nil {
			return err
		}
		if lb := minSlack - e.delta(); lb > e.lower {
			e.lower = lb
		}
		if e.haveUpper && e.upperF < lambda {
			return nil
		}
		margin := e.delta()
		if e.soft && maxCnt > 0 && e.haveUpper {
			// The smoothing gap may only relax the resolution criterion once
			// a witness cycle exists: resolving the first probe (λ > every
			// weight) on a soft margin would misread a cyclic graph as
			// acyclic. Before an upper bound exists the probe must reach a
			// hard fixed point (minSlack ≥ λ−δ) or improve and harvest.
			margin += math.Log(float64(maxCnt)) / e.beta
		}
		if minSlack >= lambda-margin {
			return nil
		}
		if improved == 0 {
			if e.soft {
				// Smoothing gap blocked a hard improvement: sharpen the
				// softmin and retry (each doubling halves the gap; the
				// pass budget backstops the loop).
				e.beta *= 2
				continue
			}
			// Hard mode: no improvement means every arc already satisfies
			// x[v] ≤ x[u]+w−λ, i.e. minSlack ≥ λ up to rounding; the slack
			// update above has the bound, the probe is resolved.
			return nil
		}
		if e.extractCycle() && e.haveUpper && e.upperF < lambda {
			return nil
		}
	}
}

// pass runs one Jacobi sweep at trial λ: reads a consistent snapshot xOld,
// writes improvements into xNew, and measures the snapshot's minimum slack
// for the certified lower bound. Returns the number of improved nodes and
// the largest in-candidate count (soft mode's smoothing-gap input).
func (e *engine) pass(lambda float64) (improved int, minSlack float64, maxCnt int32, err error) {
	if e.cfg.Checkpoint != nil {
		if cerr := e.cfg.Checkpoint(); cerr != nil {
			return 0, 0, 0, cerr
		}
	}
	if e.passes >= e.cfg.MaxPasses {
		return 0, 0, 0, ErrPassLimit
	}
	e.passes++
	copy(e.xNew, e.xOld)
	if e.soft {
		for i := range e.accM {
			e.accM[i] = math.Inf(1)
			e.accS[i] = 0
			e.accCnt[i] = 0
		}
	}
	minSlack = math.Inf(1)
	scanErr := e.src.Scan(func(id graph.ArcID, a graph.Arc) bool {
		xu := e.xOld[a.From]
		w := float64(a.Weight)
		if s := w + xu - e.xOld[a.To]; s < minSlack {
			minSlack = s
		}
		cand := xu + (w - lambda)
		v := a.To
		if e.soft {
			m, s := e.accM[v], e.accS[v]
			if cand < m {
				if math.IsInf(m, 1) {
					s = 0
				} else {
					s *= math.Exp(-e.beta * (m - cand))
				}
				e.accM[v] = cand
				e.accS[v] = s + 1
				e.parent[v] = a.From
				e.parentArc[v] = id
				e.parentW[v] = a.Weight
			} else {
				e.accS[v] = s + math.Exp(-e.beta*(cand-m))
			}
			e.accCnt[v]++
		} else if cand < e.xNew[v] {
			e.xNew[v] = cand
			e.parent[v] = a.From
			e.parentArc[v] = id
			e.parentW[v] = a.Weight
		}
		return true
	})
	if scanErr != nil {
		return 0, 0, 0, scanErr
	}
	if e.soft {
		for v := range e.accCnt {
			cnt := e.accCnt[v]
			if cnt == 0 {
				continue
			}
			if cnt > maxCnt {
				maxCnt = cnt
			}
			// Corrected softmin M + ln(cnt/S)/β ∈ [min, min + ln(cnt)/β]:
			// an optimistic smoothing of the hard min (S ∈ [1, cnt]), so
			// potentials cannot drift below what true relaxation allows.
			corrected := e.accM[v] + math.Log(float64(cnt)/e.accS[v])/e.beta
			if corrected < e.xNew[v] {
				e.xNew[v] = corrected
			}
		}
	}
	e.argImp = -1
	bestImp := 0.0
	for v := range e.xNew {
		if e.xNew[v] < e.xOld[v] {
			improved++
			if d := e.xOld[v] - e.xNew[v]; d > bestImp {
				bestImp = d
				e.argImp = graph.NodeID(v)
			}
		}
		if -e.xNew[v] > e.maxAbsX {
			e.maxAbsX = -e.xNew[v]
		}
	}
	e.xOld, e.xNew = e.xNew, e.xOld
	e.improvements += improved
	return improved, minSlack, maxCnt, nil
}

// extractCycle hunts for a parent-pointer cycle from two starts — the
// most-negative potential and the node whose potential just improved the
// most — and adopts any cycle found whose exact rational mean beats the
// incumbent upper bound. The second start matters when a stale deep
// potential from an earlier probe's plunge masks the node a better cycle is
// currently driving down. Returns whether the bound improved.
func (e *engine) extractCycle() bool {
	start := graph.NodeID(-1)
	best := math.Inf(1)
	for v, x := range e.xOld {
		if x < best {
			best = x
			start = graph.NodeID(v)
		}
	}
	improved := e.extractCycleFrom(start)
	if e.argImp >= 0 && e.argImp != start && e.extractCycleFrom(e.argImp) {
		improved = true
	}
	return improved
}

// extractCycleFrom walks the parent pointers from start; any cycle reached
// is a real cycle of the input.
func (e *engine) extractCycleFrom(start graph.NodeID) bool {
	if start < 0 || e.parent[start] < 0 {
		return false
	}
	e.stampGen++
	v := start
	steps := 0
	for {
		if e.stamp[v] == e.stampGen {
			break // v is on a parent cycle
		}
		e.stamp[v] = e.stampGen
		if e.parent[v] < 0 {
			return false
		}
		v = e.parent[v]
		if steps++; steps > e.n {
			return false
		}
	}
	// Collect the cycle's arcs. Walking u ← parent[u] from v yields the
	// arcs in reverse traversal order; reversing gives a forward cycle.
	e.cycleBuf = e.cycleBuf[:0]
	var sum int64
	u := v
	for {
		e.cycleBuf = append(e.cycleBuf, e.parentArc[u])
		sum += e.parentW[u] // |Σw| ≤ n·2³¹ ≤ 2⁵⁷: no overflow
		u = e.parent[u]
		if u == v {
			break
		}
		if len(e.cycleBuf) > e.n {
			return false
		}
	}
	for i, j := 0, len(e.cycleBuf)-1; i < j; i, j = i+1, j-1 {
		e.cycleBuf[i], e.cycleBuf[j] = e.cycleBuf[j], e.cycleBuf[i]
	}
	mean := numeric.NewRat(sum, int64(len(e.cycleBuf)))
	if e.haveUpper && !mean.Less(e.bestMean) {
		return false
	}
	e.haveUpper = true
	e.bestMean = mean
	// Round the rational up one ULP so the float interval always contains it.
	e.upperF = math.Nextafter(mean.Float64(), math.Inf(1))
	e.bestCycle = append(e.bestCycle[:0], e.cycleBuf...)
	return true
}

func (e *engine) result() Result {
	r := Result{
		Lower:        e.lower,
		Passes:       e.passes,
		Rounds:       e.rounds,
		Improvements: e.improvements,
	}
	if e.haveUpper {
		r.Mean = e.bestMean
		r.Cycle = append([]graph.ArcID(nil), e.bestCycle...)
		eb := e.upperF - e.lower
		if eb < 0 {
			eb = 0
		}
		r.ErrorBound = eb
	}
	return r
}
