package approx

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/graph"
)

// ring builds an n-cycle with the given weights (len(weights) == n).
func ring(t *testing.T, weights ...int64) *graph.Graph {
	t.Helper()
	n := len(weights)
	b := graph.NewBuilder(n, n)
	b.AddNodes(n)
	for i, w := range weights {
		b.AddArc(graph.NodeID(i), graph.NodeID((i+1)%n), w)
	}
	return b.Build()
}

// checkResult asserts the certified interval brackets the known λ* and the
// witness cycle is a real, closed cycle whose mean matches Result.Mean.
func checkResult(t *testing.T, g *graph.Graph, res Result, exact float64, eps float64) {
	t.Helper()
	mean := res.Mean.Float64()
	if res.Lower > exact+1e-9 {
		t.Fatalf("certified lower %v above true λ* %v", res.Lower, exact)
	}
	if mean < exact-1e-9 {
		t.Fatalf("reported mean %v below true λ* %v", mean, exact)
	}
	if math.Abs(mean-exact) > res.ErrorBound+1e-9 {
		t.Fatalf("|mean−λ*| = %v exceeds ErrorBound %v", math.Abs(mean-exact), res.ErrorBound)
	}
	if len(res.Cycle) == 0 {
		t.Fatal("no witness cycle")
	}
	var sum int64
	for i, id := range res.Cycle {
		a := g.Arc(id)
		next := g.Arc(res.Cycle[(i+1)%len(res.Cycle)])
		if a.To != next.From {
			t.Fatalf("witness arcs %d,%d do not chain: %+v then %+v", i, (i+1)%len(res.Cycle), a, next)
		}
		sum += a.Weight
	}
	if got := float64(sum) / float64(len(res.Cycle)); math.Abs(got-mean) > 1e-9 {
		t.Fatalf("witness cycle mean %v != reported %v", got, mean)
	}
	_ = eps
}

func TestRingExact(t *testing.T) {
	// Single cycle: λ* is its mean regardless of tolerance, and the witness
	// must be that cycle.
	g := ring(t, 3, -1, 4, 2) // mean 2
	for _, mode := range []string{ModeCHKL, ModeAP} {
		res, err := MinCycleMean(g, Config{Epsilon: 0.25, Mode: mode})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		checkResult(t, g, res, 2, 0.25)
		if res.Mean.Num() != 2 || res.Mean.Den() != 1 {
			t.Fatalf("%s: mean = %v, want exactly 2", mode, res.Mean)
		}
	}
}

func TestTwoCyclesPicksBetter(t *testing.T) {
	// Two disjoint rings: means 5 and -3; λ* = -3.
	b := graph.NewBuilder(5, 5)
	b.AddNodes(5)
	b.AddArc(0, 1, 5)
	b.AddArc(1, 0, 5)
	b.AddArc(2, 3, -4)
	b.AddArc(3, 4, -4)
	b.AddArc(4, 2, -1)
	g := b.Build()
	for _, mode := range []string{ModeCHKL, ModeAP} {
		res, err := MinCycleMean(g, Config{Epsilon: 0.05, Mode: mode})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		checkResult(t, g, res, -3, 0.05)
		// Tolerance 0.05·max(1,...) is far below the 8 gap between the two
		// cycle means, so the witness must be the -3 cycle.
		if res.Mean.Float64() > -2 {
			t.Fatalf("%s: converged to the wrong cycle: %v", mode, res.Mean)
		}
	}
}

func TestSelfLoop(t *testing.T) {
	b := graph.NewBuilder(2, 3)
	b.AddNodes(2)
	b.AddArc(0, 1, 10)
	b.AddArc(1, 0, 10)
	b.AddArc(1, 1, -7)
	g := b.Build()
	res, err := MinCycleMean(g, Config{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, g, res, -7, 0.1)
}

func TestAcyclic(t *testing.T) {
	b := graph.NewBuilder(3, 2)
	b.AddNodes(3)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 2, 1)
	g := b.Build()
	for _, mode := range []string{ModeCHKL, ModeAP} {
		if _, err := MinCycleMean(g, Config{Epsilon: 0.1, Mode: mode}); !errors.Is(err, ErrAcyclic) {
			t.Fatalf("%s: err = %v, want ErrAcyclic", mode, err)
		}
	}
	empty := graph.NewBuilder(0, 0).Build()
	if _, err := MinCycleMean(empty, Config{Epsilon: 0.1}); !errors.Is(err, ErrAcyclic) {
		t.Fatalf("empty: want ErrAcyclic")
	}
}

func TestConfigValidation(t *testing.T) {
	g := ring(t, 1, 2)
	if _, err := MinCycleMean(g, Config{Epsilon: 0}); err == nil {
		t.Error("epsilon 0 accepted")
	}
	if _, err := MinCycleMean(g, Config{Epsilon: -1}); err == nil {
		t.Error("negative epsilon accepted")
	}
	if _, err := MinCycleMean(g, Config{Epsilon: 0.1, Mode: "bogus"}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestWeightRange(t *testing.T) {
	g := ring(t, 1<<31, 0)
	if _, err := MinCycleMean(g, Config{Epsilon: 0.1}); !errors.Is(err, ErrWeightRange) {
		t.Fatalf("err = %v, want ErrWeightRange", err)
	}
}

func TestPassLimitPartialResult(t *testing.T) {
	// A long chain hanging off a ring forces many passes; a tiny budget must
	// fail typed, and any partial bounds returned must still be valid.
	const n = 64
	b := graph.NewBuilder(n, n)
	b.AddNodes(n)
	for i := 0; i < n; i++ {
		b.AddArc(graph.NodeID(i), graph.NodeID((i+1)%n), int64(i%7)-3)
	}
	g := b.Build()
	res, err := MinCycleMean(g, Config{Epsilon: 1e-9, MaxPasses: 2})
	if !errors.Is(err, ErrPassLimit) {
		t.Fatalf("err = %v, want ErrPassLimit", err)
	}
	if len(res.Cycle) > 0 {
		// Whatever partial interval exists must bracket the single cycle's
		// true mean.
		var sum int64
		for _, w := range []int64{} {
			sum += w
		}
		for i := 0; i < n; i++ {
			sum += int64(i%7) - 3
		}
		exact := float64(sum) / float64(n)
		if res.Lower > exact+1e-9 || res.Mean.Float64() < exact-1e-9 {
			t.Fatalf("partial bounds [%v, %v] miss λ* = %v", res.Lower, res.Mean.Float64(), exact)
		}
	}
}

func TestCheckpointAbort(t *testing.T) {
	g := ring(t, 5, 1, 3)
	sentinel := errors.New("canceled")
	calls := 0
	_, err := MinCycleMean(g, Config{Epsilon: 0.1, Checkpoint: func() error {
		calls++
		if calls > 1 {
			return sentinel
		}
		return nil
	}})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the checkpoint's error verbatim", err)
	}
}

func TestStreamedEqualsMaterialized(t *testing.T) {
	// The same graph presented via TextSource must produce the identical
	// certified result as the materialized *Graph.
	b := graph.NewBuilder(8, 14)
	b.AddNodes(8)
	arcs := [][3]int64{
		{0, 1, 4}, {1, 2, -2}, {2, 3, 7}, {3, 0, 1}, {2, 0, 3},
		{3, 4, -5}, {4, 5, 2}, {5, 6, 2}, {6, 7, 2}, {7, 3, -6},
		{5, 3, 0}, {1, 4, 9}, {6, 2, -1}, {0, 0, 8},
	}
	for _, a := range arcs {
		b.AddArc(graph.NodeID(a[0]), graph.NodeID(a[1]), a[2])
	}
	g := b.Build()
	var buf bytes.Buffer
	if err := graph.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	src, err := graph.ReadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{ModeCHKL, ModeAP} {
		want, err := MinCycleMean(g, Config{Epsilon: 0.02, Mode: mode})
		if err != nil {
			t.Fatalf("%s materialized: %v", mode, err)
		}
		got, err := MinCycleMean(src, Config{Epsilon: 0.02, Mode: mode})
		if err != nil {
			t.Fatalf("%s streamed: %v", mode, err)
		}
		if !got.Mean.Equal(want.Mean) || got.Lower != want.Lower || got.Passes != want.Passes {
			t.Fatalf("%s: streamed (%v,%v,%d) != materialized (%v,%v,%d)",
				mode, got.Mean, got.Lower, got.Passes, want.Mean, want.Lower, want.Passes)
		}
	}
}

// TestRandomDifferential cross-checks the certified interval against a
// brute-force λ* on many small random graphs, both modes.
func TestRandomDifferential(t *testing.T) {
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for trial := 0; trial < 200; trial++ {
		n := int(next()%6) + 2
		m := int(next()%12) + n
		b := graph.NewBuilder(n, m)
		b.AddNodes(n)
		// Hamiltonian ring guarantees a cycle, then random chords.
		for i := 0; i < n; i++ {
			b.AddArc(graph.NodeID(i), graph.NodeID((i+1)%n), int64(next()%41)-20)
		}
		for i := n; i < m; i++ {
			b.AddArc(graph.NodeID(next()%uint64(n)), graph.NodeID(next()%uint64(n)), int64(next()%41)-20)
		}
		g := b.Build()
		exact := bruteForceMinMean(g)
		for _, mode := range []string{ModeCHKL, ModeAP} {
			res, err := MinCycleMean(g, Config{Epsilon: 0.05, Mode: mode})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, mode, err)
			}
			checkResult(t, g, res, exact, 0.05)
		}
	}
}

// bruteForceMinMean enumerates simple cycles by DFS (tiny n only).
func bruteForceMinMean(g *graph.Graph) float64 {
	n := g.NumNodes()
	best := math.Inf(1)
	var path []graph.ArcID
	onPath := make([]bool, n)
	var dfs func(start, v graph.NodeID)
	dfs = func(start, v graph.NodeID) {
		for _, id := range g.OutArcs(v) {
			a := g.Arc(id)
			if a.To == start {
				var sum int64
				for _, pid := range path {
					sum += g.Arc(pid).Weight
				}
				sum += a.Weight
				if mean := float64(sum) / float64(len(path)+1); mean < best {
					best = mean
				}
				continue
			}
			if a.To < start || onPath[a.To] {
				continue
			}
			onPath[a.To] = true
			path = append(path, id)
			dfs(start, a.To)
			path = path[:len(path)-1]
			onPath[a.To] = false
		}
	}
	for s := graph.NodeID(0); int(s) < n; s++ {
		onPath[s] = true
		dfs(s, s)
		onPath[s] = false
	}
	return best
}

// TestStaleArgminWitness pins the two-start cycle extraction: after an early
// probe's potential plunge leaves a stale global minimum on the 33-mean
// cycle, the 32-mean self-loop is only discoverable from the node currently
// improving. With single-start extraction this case burned the entire pass
// budget crawling under the softmin smoothing gap.
func TestStaleArgminWitness(t *testing.T) {
	g := graph.FromArcs(3, []graph.Arc{
		{From: 2, To: 1, Weight: 116},
		{From: 1, To: 2, Weight: 48},
		{From: 0, To: 2, Weight: 18},
		{From: 1, To: 1, Weight: 32},
		{From: 2, To: 0, Weight: 48},
	})
	res, err := MinCycleMean(g, Config{Epsilon: 0.005, Mode: ModeAP})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, g, res, 32, 0.005)
	if res.Passes > 100 {
		t.Fatalf("took %d passes, expected prompt witness harvest", res.Passes)
	}
}
