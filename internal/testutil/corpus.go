package testutil

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// WithTransits reassigns deterministic transit times in [1, k] by arc index,
// so mean-family generators produce genuine ratio instances (not means in
// disguise).
func WithTransits(g *graph.Graph, k int64) *graph.Graph {
	arcs := append([]graph.Arc(nil), g.Arcs()...)
	for i := range arcs {
		arcs[i].Transit = int64(i)%k + 1
	}
	return graph.FromArcs(g.NumNodes(), arcs)
}

// MeanCorpus builds the ≥125-graph minimum-cycle-mean equivalence corpus:
// every generator family in internal/gen, weighted toward the chain-heavy
// circuits the kernelization pipeline targets. Each entry is named so
// failures are reproducible.
func MeanCorpus(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	corpus := make(map[string]*graph.Graph)
	add := func(name string, g *graph.Graph, err error) {
		if err != nil {
			tb.Fatalf("corpus %s: %v", name, err)
		}
		corpus[name] = g
	}

	// SPRAND spread: 50 graphs.
	for _, size := range []struct{ n, m int }{{4, 8}, {10, 25}, {30, 90}, {60, 120}, {100, 300}} {
		for seed := uint64(0); seed < 10; seed++ {
			g, err := gen.Sprand(gen.SprandConfig{N: size.n, M: size.m, MinWeight: -500, MaxWeight: 500, Seed: seed})
			add(fmt.Sprintf("sprand-%d-%d-%d", size.n, size.m, seed), g, err)
		}
	}
	// Chain-heavy circuits: 40 graphs, the kernelization target family.
	for i, cfg := range []gen.ChainConfig{
		{CoreN: 4, Chains: 3, ChainLen: 10, MinWeight: -50, MaxWeight: 50},
		{CoreN: 8, Chains: 6, ChainLen: 30, MinWeight: -50, MaxWeight: 50, SelfLoops: 2},
		{CoreN: 12, Chains: 10, ChainLen: 50, MinWeight: 1, MaxWeight: 1000, SelfLoops: 4},
		{CoreN: 2, Chains: 2, ChainLen: 100, MinWeight: -9, MaxWeight: 9},
	} {
		for seed := uint64(0); seed < 10; seed++ {
			cfg.Seed = seed
			g, err := gen.Chain(cfg)
			add(fmt.Sprintf("chain-%d-%d", i, seed), g, err)
		}
	}
	// Structured and multi-SCC shapes: 30 graphs.
	for seed := uint64(0); seed < 5; seed++ {
		add(fmt.Sprintf("torus-%d", seed), gen.Torus(6, 7, -100, 100, seed), nil)
		add(fmt.Sprintf("complete-%d", seed), gen.Complete(10, -50, 50, seed), nil)
		g, err := gen.MultiSCC(5, 12, 30, seed)
		add(fmt.Sprintf("multiscc-%d", seed), g, err)
		add(fmt.Sprintf("cycle-%d", seed), gen.Cycle(int(20+seed*13), int64(seed)-2), nil)
		g, _, err = gen.PlantedMinMean(40, 120, 6, -7, 100, seed)
		add(fmt.Sprintf("planted-%d", seed), g, err)
		// Single node with self-loops, the smallest cyclic graph.
		add(fmt.Sprintf("loops-%d", seed), graph.FromArcs(1, []graph.Arc{
			{From: 0, To: 0, Weight: int64(seed) + 1, Transit: 1},
			{From: 0, To: 0, Weight: 5, Transit: 1},
		}), nil)
	}
	// Large-magnitude weights: 5 graphs stressing the scaled arithmetic.
	for seed := uint64(0); seed < 5; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 12, M: 48, MinWeight: -1_000_000, MaxWeight: 1_000_000, Seed: seed})
		add(fmt.Sprintf("sprand-bigw-%d", seed), g, err)
	}
	if len(corpus) < 125 {
		tb.Fatalf("corpus has only %d graphs, want >= 125", len(corpus))
	}
	return corpus
}

// RatioCorpus builds the ≥125-graph min cost-to-time ratio enrollment
// corpus: every generator family, re-timed with several transit ranges so
// the instances are genuine ratio problems.
func RatioCorpus(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	corpus := map[string]*graph.Graph{}
	add := func(name string, g *graph.Graph, err error) {
		if err != nil {
			tb.Fatalf("%s: %v", name, err)
		}
		corpus[name] = g
	}
	for _, size := range []struct{ n, m int }{{5, 12}, {20, 60}, {50, 150}} {
		for seed := uint64(0); seed < 12; seed++ {
			g, err := gen.Sprand(gen.SprandConfig{N: size.n, M: size.m, MinWeight: -200, MaxWeight: 200, Seed: seed})
			if err == nil {
				g = WithTransits(g, int64(seed%6)+1)
			}
			add(fmt.Sprintf("sprand-%d-%d", size.n, seed), g, err)
		}
	}
	for seed := uint64(0); seed < 12; seed++ {
		g, err := gen.Chain(gen.ChainConfig{CoreN: 6, Chains: 5, ChainLen: 25, MinWeight: -40, MaxWeight: 40, SelfLoops: 2, Seed: seed})
		if err == nil {
			g = WithTransits(g, 3)
		}
		add(fmt.Sprintf("chain-%d", seed), g, err)

		mg, err := gen.MultiSCC(4, 10, 25, seed)
		if err == nil {
			mg = WithTransits(mg, 5)
		}
		add(fmt.Sprintf("multiscc-%d", seed), mg, err)

		add(fmt.Sprintf("torus-%d", seed), WithTransits(gen.Torus(4, 5, -90, 90, seed), int64(seed%4)+1), nil)
		add(fmt.Sprintf("torus-wide-%d", seed), WithTransits(gen.Torus(3, 8, -500, 500, seed), int64(seed%7)+1), nil)
		add(fmt.Sprintf("complete-%d", seed), WithTransits(gen.Complete(8, -60, 60, seed), int64(seed%3)+1), nil)
	}
	for n := 1; n <= 8; n++ {
		add(fmt.Sprintf("cycle-%d", n), WithTransits(gen.Cycle(n, int64(3*n-7)), int64(n)), nil)
	}
	// Large-magnitude weights push ratio brackets through long integer runs
	// before the fractional part matters.
	for seed := uint64(0); seed < 8; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 12, M: 48, MinWeight: -1_000_000, MaxWeight: 1_000_000, Seed: seed})
		if err == nil {
			g = WithTransits(g, int64(seed%5)+1)
		}
		add(fmt.Sprintf("sprand-bigw-%d", seed), g, err)
	}
	// Negative-optimum and unit-transit edges of the space.
	add("cycle-neg", gen.Cycle(5, -17), nil)
	for seed := uint64(0); seed < 12; seed++ {
		g, _, err := gen.PlantedMinMean(30, 90, 6, -25, 40, seed)
		add(fmt.Sprintf("planted-%d", seed), g, err)
	}
	if len(corpus) < 125 {
		tb.Fatalf("corpus has only %d graphs, want >= 125", len(corpus))
	}
	return corpus
}

// ServeCorpus builds the serving slice of the equivalence corpus: the Torus,
// MultiSCC, and Chain shapes of the DAC'99 workloads, plus transit-perturbed
// variants so the ratio path is distinct from the mean path. Sizes are kept
// small enough that the whole corpus round-trips over HTTP in a few seconds
// even under -race.
func ServeCorpus(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	corpus := make(map[string]*graph.Graph)
	for seed := uint64(0); seed < 3; seed++ {
		corpus[fmt.Sprintf("torus-%d", seed)] = gen.Torus(5, 6, -100, 100, seed)

		ms, err := gen.MultiSCC(4, 8, 20, seed)
		if err != nil {
			tb.Fatal(err)
		}
		corpus[fmt.Sprintf("multiscc-%d", seed)] = ms

		ch, err := gen.Chain(gen.ChainConfig{
			CoreN: 6, Chains: 4, ChainLen: 10,
			MinWeight: -50, MaxWeight: 50, SelfLoops: 2, Seed: seed,
		})
		if err != nil {
			tb.Fatal(err)
		}
		corpus[fmt.Sprintf("chain-%d", seed)] = ch
	}
	// Transit-perturbed variants: transit 1..4 by arc index. Collect the base
	// names first — inserting while ranging would double-perturb.
	base := make(map[string]*graph.Graph, len(corpus))
	for name, g := range corpus {
		base[name] = g
	}
	for name, g := range base {
		corpus["transit-"+name] = WithTransits(g, 4)
	}
	return corpus
}

// SmallMeanGraphs calls fn with deterministic small strongly connected
// graphs — the instance family the brute-force cycle enumeration oracle can
// check exhaustively. Acyclic or disconnected drawings are skipped.
func SmallMeanGraphs(tb testing.TB, fn func(name string, g *graph.Graph)) {
	tb.Helper()
	for seed := uint64(0); seed < 25; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 6, M: 15, MinWeight: -30, MaxWeight: 30, Seed: seed})
		if err != nil {
			tb.Fatal(err)
		}
		if graph.IsStronglyConnected(g) {
			fn(fmt.Sprintf("sprand-%d", seed), g)
		}
	}
	for n := 1; n <= 6; n++ {
		fn(fmt.Sprintf("cycle-%d", n), gen.Cycle(n, int64(2*n-5)))
	}
	for seed := uint64(0); seed < 5; seed++ {
		fn(fmt.Sprintf("complete-%d", seed), gen.Complete(5, -20, 20, seed))
	}
}

// SmallRatioGraphs is SmallMeanGraphs with deterministic transit times, for
// the ratio brute-force oracle.
func SmallRatioGraphs(tb testing.TB, fn func(name string, g *graph.Graph)) {
	tb.Helper()
	SmallMeanGraphs(tb, func(name string, g *graph.Graph) {
		fn(name, WithTransits(g, 3))
	})
}

// NearLimitMeanGraphs builds instances whose weights sit exactly at the
// ±(2^31−1) contract boundary — the largest magnitudes the solvers admit —
// in shapes that stress different solver internals, with the exact λ* each
// solver must report if it reports anything at all.
func NearLimitMeanGraphs() (graphs map[string]*graph.Graph, want map[string]numeric.Rat) {
	lim := int64(core.MaxWeightMagnitude)
	graphs = map[string]*graph.Graph{
		// Two-cycle swinging between the extremes: λ* = 0.
		"swing": graph.FromArcs(2, []graph.Arc{
			{From: 0, To: 1, Weight: lim, Transit: 1},
			{From: 1, To: 0, Weight: -lim, Transit: 1},
		}),
		// All-max triangle: λ* = lim.
		"allmax": graph.FromArcs(3, []graph.Arc{
			{From: 0, To: 1, Weight: lim, Transit: 1},
			{From: 1, To: 2, Weight: lim, Transit: 1},
			{From: 2, To: 0, Weight: lim, Transit: 1},
		}),
		// All-min triangle: λ* = −lim.
		"allmin": graph.FromArcs(3, []graph.Arc{
			{From: 0, To: 1, Weight: -lim, Transit: 1},
			{From: 1, To: 2, Weight: -lim, Transit: 1},
			{From: 2, To: 0, Weight: -lim, Transit: 1},
		}),
		// Non-trivial choice between a near-limit self-loop and a mixed
		// cycle: λ* = −1 via the 4-cycle of mean (−lim + lim−2 − 2 − 0)/4.
		"choice": graph.FromArcs(4, []graph.Arc{
			{From: 0, To: 1, Weight: -lim, Transit: 1},
			{From: 1, To: 2, Weight: lim - 2, Transit: 1},
			{From: 2, To: 3, Weight: -2, Transit: 1},
			{From: 3, To: 0, Weight: 0, Transit: 1},
			{From: 1, To: 1, Weight: lim, Transit: 1},
		}),
		// Chain-heavy shape so contraction sums near-limit weights.
		"chain": graph.FromArcs(6, []graph.Arc{
			{From: 0, To: 1, Weight: lim, Transit: 1},
			{From: 1, To: 2, Weight: lim, Transit: 1},
			{From: 2, To: 3, Weight: lim, Transit: 1},
			{From: 3, To: 4, Weight: -lim, Transit: 1},
			{From: 4, To: 5, Weight: -lim, Transit: 1},
			{From: 5, To: 0, Weight: -lim + 6, Transit: 1},
		}),
	}
	want = map[string]numeric.Rat{
		"swing":  numeric.FromInt(0),
		"allmax": numeric.FromInt(lim),
		"allmin": numeric.FromInt(-lim),
		"choice": numeric.FromInt(-1),
		"chain":  numeric.FromInt(1),
	}
	return graphs, want
}

// NearLimitRatioGraphs is the ratio-problem boundary suite: near-limit
// weights over non-uniform transit times, with the exact ρ* of each.
func NearLimitRatioGraphs() (graphs map[string]*graph.Graph, want map[string]numeric.Rat) {
	lim := int64(core.MaxWeightMagnitude)
	graphs = map[string]*graph.Graph{
		// Swing over transit 3+1: ρ* = 0.
		"swing": graph.FromArcs(2, []graph.Arc{
			{From: 0, To: 1, Weight: lim, Transit: 3},
			{From: 1, To: 0, Weight: -lim, Transit: 1},
		}),
		// All-max triangle over transit 2: ρ* = lim/2.
		"allmax": graph.FromArcs(3, []graph.Arc{
			{From: 0, To: 1, Weight: lim, Transit: 2},
			{From: 1, To: 2, Weight: lim, Transit: 2},
			{From: 2, To: 0, Weight: lim, Transit: 2},
		}),
		// Self-loop race: ρ* = −lim/3 from the slow negative loop.
		"loops": graph.FromArcs(1, []graph.Arc{
			{From: 0, To: 0, Weight: -lim, Transit: 3},
			{From: 0, To: 0, Weight: lim, Transit: 1},
		}),
		// Mixed cycle against a near-limit loop: ρ* = (−2)/5 via the 4-cycle
		// of weight −lim + (lim−2) − 2 + 2 = −2 and transit 5.
		"choice": graph.FromArcs(4, []graph.Arc{
			{From: 0, To: 1, Weight: -lim, Transit: 1},
			{From: 1, To: 2, Weight: lim - 2, Transit: 2},
			{From: 2, To: 3, Weight: -2, Transit: 1},
			{From: 3, To: 0, Weight: 2, Transit: 1},
			{From: 1, To: 1, Weight: lim, Transit: 2},
		}),
	}
	want = map[string]numeric.Rat{
		"swing":  numeric.FromInt(0),
		"allmax": numeric.NewRat(lim, 2),
		"loops":  numeric.NewRat(-lim, 3),
		"choice": numeric.NewRat(-2, 5),
	}
	return graphs, want
}
