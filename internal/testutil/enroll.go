package testutil

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/ratio"
	"repro/internal/verify"
)

// meanOptionMatrix is the driver option matrix every enrolled mean solver is
// proven under: each entry must produce a bit-identical certified λ*.
var meanOptionMatrix = []struct {
	name string
	opt  core.Options
}{
	{"raw", core.Options{Certify: true}},
	{"kernelize", core.Options{Kernelize: true, Certify: true}},
	{"parallel", core.Options{Parallelism: 4, Certify: true}},
	{"kernel-parallel", core.Options{Kernelize: true, Parallelism: 4, Certify: true}},
}

// typedRangeErr reports whether err is one of the typed contract errors an
// adversarial near-limit instance may legitimately produce instead of an
// exact answer.
func typedRangeErr(err error) bool {
	return errors.Is(err, core.ErrNumericRange) || errors.Is(err, core.ErrWeightRange) ||
		errors.Is(err, core.ErrIterationLimit) || errors.Is(err, ratio.ErrNumericRange) ||
		errors.Is(err, ratio.ErrIterationLimit)
}

// Enroll runs the full differential battery for the named algorithm: the
// 125-graph corpus equivalence against certified Howard references under the
// {raw, kernelized, parallel, kernelized+parallel} option matrix, the
// brute-force differential on exhaustively enumerable graphs, and the
// adversarial ±(2^31−1) boundary contract. The name is resolved in the core
// (minimum cycle mean) and ratio (cost-to-time ratio) registries; whichever
// resolve are exercised, and an algorithm known to neither fails the test.
//
// This is the enrollment checklist item for any new engine:
//
//	func TestEnrollMyAlgo(t *testing.T) { testutil.Enroll(t, "myalgo") }
//
// Call it from an external test package (package core_test, ratio_test, …):
// this package imports core and ratio, so internal test files of those
// packages cannot import it.
func Enroll(t *testing.T, name string) {
	t.Helper()
	meanAlgo, meanErr := core.ByName(name)
	ratioAlgo, ratioErr := ratio.ByName(name)
	if meanErr != nil && ratioErr != nil {
		t.Fatalf("testutil: %q is in neither the core nor the ratio registry (core: %v; ratio: %v)", name, meanErr, ratioErr)
	}
	if meanErr == nil {
		enrollMean(t, meanAlgo)
	}
	if ratioErr == nil {
		enrollRatio(t, ratioAlgo)
	}
}

// reportShrunk minimizes g under fails and logs the crasher-format instance.
func reportShrunk(t *testing.T, g *graph.Graph, fails func(*graph.Graph) bool, repro string) {
	t.Helper()
	small := Shrink(g, fails)
	t.Logf("minimized failing graph (%d nodes, %d arcs):\n%s",
		small.NumNodes(), small.NumArcs(), FormatCrasher(small, repro))
}

func enrollMean(t *testing.T, algo core.Algorithm) {
	howard, err := core.ByName("howard")
	if err != nil {
		t.Fatal(err)
	}

	t.Run("mean/corpus", func(t *testing.T) {
		for name, g := range MeanCorpus(t) {
			ref, err := core.MinimumCycleMean(g, howard, core.Options{Certify: true})
			if err != nil {
				t.Fatalf("%s: howard reference: %v", name, err)
			}
			for _, m := range meanOptionMatrix {
				res, err := core.MinimumCycleMean(g, algo, m.opt)
				if err != nil {
					t.Errorf("%s/%s: %v", name, m.name, err)
					continue
				}
				if res.Mean.Num() != ref.Mean.Num() || res.Mean.Den() != ref.Mean.Den() {
					t.Errorf("%s/%s: λ* = %v, howard = %v", name, m.name, res.Mean, ref.Mean)
					reportShrunk(t, g, func(g *graph.Graph) bool {
						a, err1 := core.MinimumCycleMean(g, algo, core.Options{})
						b, err2 := core.MinimumCycleMean(g, howard, core.Options{})
						return err1 == nil && err2 == nil && !a.Mean.Equal(b.Mean)
					}, "go test -run 'Enroll.*"+algo.Name()+"' ./internal/core/")
					continue
				}
				if !res.Exact || res.Certificate == nil {
					t.Errorf("%s/%s: result not exact/certified: %+v", name, m.name, res)
				}
				if err := g.ValidateCycle(res.Cycle); err != nil {
					t.Errorf("%s/%s: witness cycle invalid: %v", name, m.name, err)
					continue
				}
				if mean := numeric.NewRat(g.CycleWeight(res.Cycle), int64(len(res.Cycle))); !mean.Equal(res.Mean) {
					t.Errorf("%s/%s: witness cycle mean %v != λ* %v", name, m.name, mean, res.Mean)
				}
			}
		}
	})

	t.Run("mean/bruteforce", func(t *testing.T) {
		SmallMeanGraphs(t, func(name string, g *graph.Graph) {
			want, _, err := verify.BruteForceMinMean(g)
			if err != nil {
				t.Fatalf("%s: oracle: %v", name, err)
			}
			res, err := algo.Solve(g, core.Options{})
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			if !res.Mean.Equal(want) {
				t.Errorf("%s: λ* = %v, brute force = %v", name, res.Mean, want)
				reportShrunk(t, g, func(g *graph.Graph) bool {
					if !graph.IsStronglyConnected(g) {
						return false
					}
					w, _, err1 := verify.BruteForceMinMean(g)
					r, err2 := algo.Solve(g, core.Options{})
					return err1 == nil && err2 == nil && !r.Mean.Equal(w)
				}, "go test -run 'Enroll.*"+algo.Name()+"' ./internal/core/")
			}
		})
	})

	t.Run("mean/adversarial", func(t *testing.T) {
		graphs, want := NearLimitMeanGraphs()
		for name, g := range graphs {
			res, err := core.MinimumCycleMean(g, algo, core.Options{Certify: true})
			if err != nil {
				if !typedRangeErr(err) {
					t.Errorf("%s: err = %v, want a typed range error", name, err)
				}
				continue
			}
			if !res.Mean.Equal(want[name]) {
				t.Errorf("%s: λ* = %v, want %v", name, res.Mean, want[name])
			}
			if res.Certificate == nil {
				t.Errorf("%s: certified solve carries no certificate", name)
			}
		}
	})
}

func enrollRatio(t *testing.T, algo ratio.Algorithm) {
	howard, err := ratio.ByName("howard")
	if err != nil {
		t.Fatal(err)
	}

	t.Run("ratio/corpus", func(t *testing.T) {
		for name, g := range RatioCorpus(t) {
			ref, err := ratio.MinimumCycleRatio(g, howard, core.Options{Certify: true})
			if err != nil {
				t.Fatalf("%s: howard reference: %v", name, err)
			}
			for _, m := range meanOptionMatrix {
				res, err := ratio.MinimumCycleRatio(g, algo, m.opt)
				if err != nil {
					t.Errorf("%s/%s: %v", name, m.name, err)
					continue
				}
				if res.Ratio.Num() != ref.Ratio.Num() || res.Ratio.Den() != ref.Ratio.Den() {
					t.Errorf("%s/%s: ρ* = %v, howard = %v", name, m.name, res.Ratio, ref.Ratio)
					reportShrunk(t, g, func(g *graph.Graph) bool {
						a, err1 := ratio.MinimumCycleRatio(g, algo, core.Options{})
						b, err2 := ratio.MinimumCycleRatio(g, howard, core.Options{})
						return err1 == nil && err2 == nil && !a.Ratio.Equal(b.Ratio)
					}, "go test -run 'Enroll.*"+algo.Name()+"' ./internal/ratio/")
					continue
				}
				if !res.Exact || res.Certificate == nil {
					t.Errorf("%s/%s: result not exact/certified: %+v", name, m.name, res)
				}
				if err := g.ValidateCycle(res.Cycle); err != nil {
					t.Errorf("%s/%s: witness cycle invalid: %v", name, m.name, err)
					continue
				}
				if tr := g.CycleTransit(res.Cycle); tr <= 0 {
					t.Errorf("%s/%s: witness cycle has non-positive transit %d", name, m.name, tr)
				} else if r := numeric.NewRat(g.CycleWeight(res.Cycle), tr); !r.Equal(res.Ratio) {
					t.Errorf("%s/%s: witness cycle ratio %v != ρ* %v", name, m.name, r, res.Ratio)
				}
			}
		}
	})

	t.Run("ratio/bruteforce", func(t *testing.T) {
		SmallRatioGraphs(t, func(name string, g *graph.Graph) {
			want, _, err := verify.BruteForceMinRatio(g)
			if err != nil {
				t.Fatalf("%s: oracle: %v", name, err)
			}
			res, err := algo.Solve(g, core.Options{})
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			if !res.Ratio.Equal(want) {
				t.Errorf("%s: ρ* = %v, brute force = %v", name, res.Ratio, want)
				reportShrunk(t, g, func(g *graph.Graph) bool {
					if !graph.IsStronglyConnected(g) {
						return false
					}
					w, _, err1 := verify.BruteForceMinRatio(g)
					r, err2 := algo.Solve(g, core.Options{})
					return err1 == nil && err2 == nil && !r.Ratio.Equal(w)
				}, "go test -run 'Enroll.*"+algo.Name()+"' ./internal/ratio/")
			}
		})
	})

	t.Run("ratio/adversarial", func(t *testing.T) {
		graphs, want := NearLimitRatioGraphs()
		for name, g := range graphs {
			res, err := ratio.MinimumCycleRatio(g, algo, core.Options{Certify: true})
			if err != nil {
				if !typedRangeErr(err) {
					t.Errorf("%s: err = %v, want a typed range error", name, err)
				}
				continue
			}
			if !res.Ratio.Equal(want[name]) {
				t.Errorf("%s: ρ* = %v, want %v", name, res.Ratio, want[name])
			}
			if res.Certificate == nil {
				t.Errorf("%s: certified solve carries no certificate", name)
			}
		}
	})
}
