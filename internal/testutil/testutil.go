// Package testutil is the shared generation-based differential test harness.
//
// Before this package, four packages carried hand-copied versions of the
// same pattern — build a generator-spanning graph corpus, solve each graph
// with a reference algorithm and the algorithm under test across an option
// matrix, and demand bit-identical certified answers: the core kernel
// equivalence corpus, the ratio kernel corpus, the Stern–Brocot enrollment
// corpus, and the serving corpus. This package centralizes the corpora
// (MeanCorpus, RatioCorpus, ServeCorpus), the small-instance enumeration the
// brute-force oracles can check (SmallMeanGraphs, SmallRatioGraphs), the
// ±(2^31−1) adversarial boundary suites (NearLimitMeanGraphs,
// NearLimitRatioGraphs), a minimizing shrinker for failing graphs (Shrink),
// and the crasher file format the fuzz reporters write (WriteCrasher).
//
// Enrolling a new algorithm is one line in an external test file:
//
//	func TestEnrollMyAlgo(t *testing.T) { testutil.Enroll(t, "myalgo") }
//
// Enroll resolves the name in the core (minimum cycle mean) and ratio
// (minimum cost-to-time ratio) registries and runs whichever resolve through
// the full battery: corpus equivalence against certified Howard references
// under the {raw, kernelized, parallel, kernelized+parallel} option matrix,
// brute-force differentials on exhaustively enumerable graphs, and the
// adversarial near-limit contract (exact answer or typed range error, never
// a panic, never a wrong answer). Failures are minimized with Shrink and
// reported in the text graph format, ready to be pasted into a regression
// test or a testdata/crashers seed.
//
// Because this package imports core and ratio, tests inside those packages
// must enroll from an external test package (package core_test /
// package ratio_test); fuzz corpora under testdata/fuzz are keyed by test
// name, not package, so moving fuzz targets outward preserves their seeds.
package testutil
