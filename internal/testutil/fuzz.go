package testutil

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"repro/internal/graph"
)

// DecodeMeanGraph derives a small mean instance from fuzz bytes: byte 0
// picks the node count in [2, maxN], then each 3-byte chunk becomes an arc
// (from, to, int8 weight) with transit 1. Self-loops and parallel arcs are
// deliberately reachable; the graph need not be strongly connected or even
// cyclic. Returns nil when the bytes are too short to encode an arc.
func DecodeMeanGraph(data []byte, maxN, maxArcs int) *graph.Graph {
	if len(data) < 4 {
		return nil
	}
	n := 2 + int(data[0])%(maxN-1)
	data = data[1:]
	var arcs []graph.Arc
	for len(data) >= 3 && len(arcs) < maxArcs {
		arcs = append(arcs, graph.Arc{
			From:    graph.NodeID(int(data[0]) % n),
			To:      graph.NodeID(int(data[1]) % n),
			Weight:  int64(int8(data[2])),
			Transit: 1,
		})
		data = data[3:]
	}
	if len(arcs) == 0 {
		return nil
	}
	return graph.FromArcs(n, arcs)
}

// DecodeRatioGraph derives a small ratio instance from fuzz bytes: byte 0
// picks the node count, byte 1's low bit decides whether zero-transit arcs
// are allowed, then each 4-byte chunk becomes an arc (from, to, int8 weight,
// transit). With zeros allowed transits land in [0, 3] — exercising the
// non-positive-transit-cycle rejection — otherwise in [1, 4], which every
// solver (including the transit expansion) accepts.
func DecodeRatioGraph(data []byte) (*graph.Graph, bool) {
	if len(data) < 6 {
		return nil, false
	}
	n := 2 + int(data[0])%5
	allowZero := data[1]&1 == 1
	data = data[2:]
	var arcs []graph.Arc
	for len(data) >= 4 && len(arcs) < 14 {
		tr := int64(data[3]) % 4
		if !allowZero {
			tr++
		}
		arcs = append(arcs, graph.Arc{
			From:    graph.NodeID(int(data[0]) % n),
			To:      graph.NodeID(int(data[1]) % n),
			Weight:  int64(int8(data[2])),
			Transit: tr,
		})
		data = data[4:]
	}
	if len(arcs) == 0 {
		return nil, false
	}
	return graph.FromArcs(n, arcs), allowZero
}

// SaveShrunkCrasher is the fuzz targets' failure reporter: it minimizes g
// under fails, persists the result to testdata/crashers/<name>-<hash>.txt
// (hash of the minimized instance, so re-discoveries of the same bug
// coalesce into one file), and returns the minimized graph together with
// the path it was written to. Persistence errors are logged, never fatal —
// the caller's own t.Fatalf carries the finding.
func SaveShrunkCrasher(tb testing.TB, name string, g *graph.Graph, fails func(*graph.Graph) bool, repro string) (*graph.Graph, string) {
	tb.Helper()
	small := Shrink(g, fails)
	body := FormatCrasher(small, repro)
	sum := sha256.Sum256([]byte(body))
	path, err := WriteCrasher("testdata/crashers", fmt.Sprintf("%s-%x", name, sum[:6]), small, repro)
	if err != nil {
		tb.Logf("testutil: writing crasher: %v", err)
		return small, ""
	}
	tb.Logf("minimized crasher (%d nodes, %d arcs) written to %s",
		small.NumNodes(), small.NumArcs(), path)
	return small, path
}
