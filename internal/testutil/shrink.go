package testutil

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/graph"
)

// Shrink minimizes a failing graph: it greedily removes arcs (chunks first,
// then one at a time), drops unused trailing nodes, and rounds weights and
// transit times toward zero/one, keeping each simplification only while
// fails(g) stays true. The result is the smallest instance this local search
// reaches — typically a handful of arcs — making differential failures
// readable regression seeds. fails must be deterministic; it is called
// O(arcs · log arcs) times.
func Shrink(g *graph.Graph, fails func(*graph.Graph) bool) *graph.Graph {
	if !fails(g) {
		return g
	}
	arcs := append([]graph.Arc(nil), g.Arcs()...)
	n := g.NumNodes()
	rebuild := func(arcs []graph.Arc) *graph.Graph {
		// Renumber nodes densely so dropped arcs shed their nodes too.
		remap := make(map[graph.NodeID]graph.NodeID, n)
		out := make([]graph.Arc, len(arcs))
		for i, a := range arcs {
			for _, v := range []graph.NodeID{a.From, a.To} {
				if _, ok := remap[v]; !ok {
					remap[v] = graph.NodeID(len(remap))
				}
			}
			out[i] = graph.Arc{From: remap[a.From], To: remap[a.To], Weight: a.Weight, Transit: a.Transit}
		}
		return graph.FromArcs(len(remap), out)
	}
	still := func(arcs []graph.Arc) bool {
		return len(arcs) > 0 && fails(rebuild(arcs))
	}

	// Arc removal: halves, then quarters, ... then single arcs, restarting
	// from big chunks after any success (classic ddmin shape).
	for chunk := len(arcs) / 2; chunk >= 1; {
		removed := false
		for at := 0; at+chunk <= len(arcs); {
			trial := append(append([]graph.Arc(nil), arcs[:at]...), arcs[at+chunk:]...)
			if still(trial) {
				arcs = trial
				removed = true
			} else {
				at += chunk
			}
		}
		if removed && chunk > 1 {
			chunk = len(arcs) / 2
			if chunk < 1 {
				chunk = 1
			}
			continue
		}
		chunk /= 2
	}

	// Value simplification: halve weights toward 0, transits toward 1.
	for changed := true; changed; {
		changed = false
		for i := range arcs {
			if arcs[i].Weight != 0 {
				trial := append([]graph.Arc(nil), arcs...)
				trial[i].Weight /= 2
				if still(trial) {
					arcs = trial
					changed = true
				}
			}
			if arcs[i].Transit > 1 {
				trial := append([]graph.Arc(nil), arcs...)
				trial[i].Transit = 1 + (trial[i].Transit-1)/2
				if still(trial) {
					arcs = trial
					changed = true
				}
			}
		}
	}
	return rebuild(arcs)
}

// FormatCrasher renders a graph in the text format with a comment header
// carrying the reproduction command, the shape fuzz crashers are stored in
// under testdata/crashers/.
func FormatCrasher(g *graph.Graph, repro string) string {
	var sb strings.Builder
	for _, line := range strings.Split(strings.TrimSpace(repro), "\n") {
		fmt.Fprintf(&sb, "c %s\n", line)
	}
	if err := graph.Write(&sb, g); err != nil {
		fmt.Fprintf(&sb, "c graph.Write failed: %v\n", err)
	}
	return sb.String()
}

// WriteCrasher persists a minimized failing graph to dir/name.txt in
// FormatCrasher form, creating dir if needed, and returns the path. The fuzz
// differential targets call it on failure so regressions land as readable
// seed files.
func WriteCrasher(dir, name string, g *graph.Graph, repro string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".txt")
	if err := os.WriteFile(path, []byte(FormatCrasher(g, repro)), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
