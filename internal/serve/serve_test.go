package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/verify"
)

// graphText renders g in the text wire format.
func graphText(t testing.TB, g *graph.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// graphJSON renders g in the inline JSON wire format.
func graphJSON(t testing.TB, g *graph.Graph) json.RawMessage {
	t.Helper()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// tryPost sends a solve request; safe from any goroutine (no t.Fatal).
func tryPost(ts *httptest.Server, body any) (int, []byte, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	return tryPostRaw(ts, data)
}

func tryPostRaw(ts *httptest.Server, data []byte) (int, []byte, error) {
	resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out.Bytes(), nil
}

// post is tryPost for the test goroutine: transport failures are fatal.
func post(t testing.TB, ts *httptest.Server, body any) (int, []byte) {
	t.Helper()
	status, out, err := tryPost(ts, body)
	if err != nil {
		t.Fatal(err)
	}
	return status, out
}

func postRaw(t testing.TB, ts *httptest.Server, data []byte) (int, []byte) {
	t.Helper()
	status, out, err := tryPostRaw(ts, data)
	if err != nil {
		t.Fatal(err)
	}
	return status, out
}

// tryDecodeResults parses a batch response; safe from any goroutine.
func tryDecodeResults(body []byte) ([]GraphResult, error) {
	var resp SolveResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("undecodable response: %v\n%s", err, body)
	}
	return resp.Results, nil
}

func decodeResults(t testing.TB, body []byte) []GraphResult {
	t.Helper()
	results, err := tryDecodeResults(body)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// checkCycleValue asserts the returned cycle exists in g and attains value
// (weight/length for means, weight/transit for ratios).
func checkCycleValue(t *testing.T, g *graph.Graph, res GraphResult, ratioProblem bool) {
	t.Helper()
	if err := g.ValidateCycle(res.Cycle); err != nil {
		t.Fatalf("returned cycle invalid: %v", err)
	}
	w := g.CycleWeight(res.Cycle)
	den := int64(len(res.Cycle))
	if ratioProblem {
		den = g.CycleTransit(res.Cycle)
	}
	got := numeric.NewRat(w, den)
	want := numeric.NewRat(res.Value.Num, res.Value.Den)
	if !got.Equal(want) {
		t.Fatalf("cycle attains %v, response value %v", got, want)
	}
}

// TestBatchSolveAgainstOracle drives mean, max, ratio, certify, and
// kernelize requests through the HTTP boundary and checks every answer
// against the brute-force cycle-enumeration oracle.
func TestBatchSolveAgainstOracle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})

	// Small graphs the oracle can enumerate exhaustively. Transit times 1-3
	// make the ratio problem distinct from the mean problem.
	graphs := make(map[string]*graph.Graph)
	for seed := uint64(0); seed < 4; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 8, M: 20, MinWeight: -50, MaxWeight: 50, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		arcs := append([]graph.Arc(nil), g.Arcs()...)
		for i := range arcs {
			arcs[i].Transit = 1 + int64(i%3)
		}
		graphs[fmt.Sprintf("sprand-%d", seed)] = graph.FromArcs(g.NumNodes(), arcs)
	}
	ms, err := gen.MultiSCC(3, 5, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	graphs["multiscc"] = ms

	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			minMean, _, err := verify.BruteForceMinMean(g)
			if err != nil {
				t.Fatal(err)
			}
			maxMean, _, err := verify.BruteForceMaxMean(g)
			if err != nil {
				t.Fatal(err)
			}
			minRatio, _, err := verify.BruteForceMinRatio(g)
			if err != nil {
				t.Fatal(err)
			}

			req := SolveRequest{Requests: []GraphRequest{
				{ID: "mean", Text: graphText(t, g)},
				{ID: "mean-json", Graph: graphJSON(t, g), Certify: true},
				{ID: "mean-kernel", Text: graphText(t, g), Algorithm: "karp", Kernelize: true},
				{ID: "mean-max", Graph: graphJSON(t, g), Maximize: true, Certify: true},
				{ID: "ratio", Text: graphText(t, g), Problem: "ratio", Certify: true},
				{ID: "ratio-lawler", Graph: graphJSON(t, g), Problem: "ratio", Algorithm: "lawler"},
				{ID: "ratio-sb", Text: graphText(t, g), Problem: "ratio", Algorithm: "sternbrocot", Certify: true},
				{ID: "mean-madani", Graph: graphJSON(t, g), Algorithm: "madani", Certify: true},
				{ID: "ratio-bhk", Text: graphText(t, g), Problem: "ratio", Algorithm: "bhk", Certify: true},
			}}
			status, body := post(t, ts, req)
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, body)
			}
			results := decodeResults(t, body)
			if len(results) != len(req.Requests) {
				t.Fatalf("%d results for %d requests", len(results), len(req.Requests))
			}
			want := map[string]numeric.Rat{
				"mean": minMean, "mean-json": minMean, "mean-kernel": minMean,
				"mean-max": maxMean, "ratio": minRatio, "ratio-lawler": minRatio,
				"ratio-sb": minRatio, "mean-madani": minMean, "ratio-bhk": minRatio,
			}
			for _, res := range results {
				if !res.OK || res.Error != nil {
					t.Fatalf("%s failed: %+v", res.ID, res.Error)
				}
				w := want[res.ID]
				if res.Value == nil || res.Value.Num != w.Num() || res.Value.Den != w.Den() {
					t.Fatalf("%s: value %+v, oracle %v", res.ID, res.Value, w)
				}
				if !res.Exact {
					t.Fatalf("%s: inexact result from exact solver", res.ID)
				}
				wantCert := res.ID == "mean-json" || res.ID == "mean-max" || res.ID == "ratio" ||
					res.ID == "ratio-sb" || res.ID == "mean-madani" || res.ID == "ratio-bhk"
				if res.Certified != wantCert {
					t.Fatalf("%s: certified=%v, want %v", res.ID, res.Certified, wantCert)
				}
				if res.ID != "mean-max" { // max cycles attain the max value; skip the min check
					checkCycleValue(t, g, res, strings.HasPrefix(res.ID, "ratio"))
				}
			}
		})
	}
}

// TestTypedSolverErrors asserts the per-graph error codes for degenerate
// inputs: no batch-wide failure, one typed body per graph.
func TestTypedSolverErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	acyclic := graph.FromArcs(3, []graph.Arc{
		{From: 0, To: 1, Weight: 1, Transit: 1},
		{From: 1, To: 2, Weight: 1, Transit: 1},
	})
	bigWeight := graph.FromArcs(1, []graph.Arc{{From: 0, To: 0, Weight: 1 << 33, Transit: 1}})
	zeroTransit := graph.FromArcs(2, []graph.Arc{
		{From: 0, To: 1, Weight: 1, Transit: 0},
		{From: 1, To: 0, Weight: 1, Transit: 0},
	})

	req := SolveRequest{Requests: []GraphRequest{
		{ID: "acyclic", Graph: graphJSON(t, acyclic)},
		{ID: "weight-range", Graph: graphJSON(t, bigWeight)},
		{ID: "zero-transit", Graph: graphJSON(t, zeroTransit), Problem: "ratio"},
		{ID: "unknown-algo", Graph: graphJSON(t, acyclic), Algorithm: "nosuch"},
		{ID: "unknown-problem", Graph: graphJSON(t, acyclic), Problem: "median"},
		{ID: "bad-text", Text: "p mcm 2 1\na 1 5 3\n"},
		{ID: "huge-text", Text: "p mcm 99999999 3\n"},
		{ID: "huge-json", Graph: json.RawMessage(`{"nodes": 134217728, "arcs": []}`)},
		{ID: "both-forms", Text: "p mcm 1 0\n", Graph: graphJSON(t, acyclic)},
		{ID: "neither-form"},
	}}
	status, body := post(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	wantCodes := map[string]string{
		"acyclic":         CodeAcyclic,
		"weight-range":    CodeWeightRange,
		"zero-transit":    CodeNonPositiveTransit,
		"unknown-algo":    CodeUnknownAlgorithm,
		"unknown-problem": CodeBadRequest,
		"bad-text":        CodeBadGraph,
		"huge-text":       CodeBadGraph,
		"huge-json":       CodeBadGraph,
		"both-forms":      CodeBadGraph,
		"neither-form":    CodeBadGraph,
	}
	for _, res := range decodeResults(t, body) {
		if res.OK || res.Error == nil {
			t.Fatalf("%s: expected a typed error, got OK", res.ID)
		}
		if res.Error.Code != wantCodes[res.ID] {
			t.Fatalf("%s: code %q, want %q (%s)", res.ID, res.Error.Code, wantCodes[res.ID], res.Error.Message)
		}
	}
}

// TestRequestLevelRejections covers the non-200 request failures: bad
// method, malformed JSON, empty and oversized batches, oversized bodies.
func TestRequestLevelRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBatch: 2, MaxBodyBytes: 2048})

	t.Run("method", func(t *testing.T) {
		resp, err := ts.Client().Get(ts.URL + "/v1/solve")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status %d", resp.StatusCode)
		}
	})
	t.Run("malformed-json", func(t *testing.T) {
		status, body := postRaw(t, ts, []byte(`{"requests": [`))
		if status != http.StatusBadRequest || !bytes.Contains(body, []byte(CodeBadRequest)) {
			t.Fatalf("status %d: %s", status, body)
		}
	})
	t.Run("empty-batch", func(t *testing.T) {
		status, body := postRaw(t, ts, []byte(`{"requests": []}`))
		if status != http.StatusBadRequest || !bytes.Contains(body, []byte(CodeBadRequest)) {
			t.Fatalf("status %d: %s", status, body)
		}
	})
	t.Run("batch-too-large", func(t *testing.T) {
		status, body := postRaw(t, ts, []byte(`{"requests": [{}, {}, {}]}`))
		if status != http.StatusBadRequest || !bytes.Contains(body, []byte(CodeBatchTooLarge)) {
			t.Fatalf("status %d: %s", status, body)
		}
	})
	t.Run("body-too-large", func(t *testing.T) {
		big := fmt.Sprintf(`{"requests": [{"text": %q}]}`, strings.Repeat("c padding\n", 400))
		status, body := postRaw(t, ts, []byte(big))
		if status != http.StatusRequestEntityTooLarge || !bytes.Contains(body, []byte(CodeBodyTooLarge)) {
			t.Fatalf("status %d: %s", status, body)
		}
	})
}

// TestDeadlineExpiry covers both expiry flavors: mid-solve (the worker is
// already solving when the budget ends — the solver must unwind at its next
// checkpoint with a typed error, never a panic or an empty 200) and
// while-queued (the budget ends before a worker picks the graph up).
func TestDeadlineExpiry(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	// The hook parks the worker until the request budget expires, which
	// deterministically models a solve that outlives its deadline.
	s.testHookSolving = func(ctx context.Context) { <-ctx.Done() }

	status, body := post(t, ts, SolveRequest{
		DeadlineMillis: 60,
		Requests: []GraphRequest{
			{ID: "mid-solve", Text: "p mcm 2 2\na 1 2 3\na 2 1 5\n"},
			{ID: "queued", Text: "p mcm 2 2\na 1 2 3\na 2 1 5\n"},
		},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	for _, res := range decodeResults(t, body) {
		if res.OK || res.Error == nil || res.Error.Code != CodeDeadlineExceeded {
			t.Fatalf("%s: want %s, got %+v / %+v", res.ID, CodeDeadlineExceeded, res.Value, res.Error)
		}
	}
	if got := s.metrics.deadlines.Load(); got != 2 {
		t.Fatalf("deadline metric %d, want 2", got)
	}
}

// TestMidSolveDeadlineRealSolver exercises a genuine mid-solve expiry with
// no test hook: a graph large enough to take a while, a budget too small to
// finish it, and the solver's cooperative checkpoint doing the unwinding.
func TestMidSolveDeadlineRealSolver(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	g, err := gen.Sprand(gen.SprandConfig{N: 3000, M: 12000, MinWeight: -1000, MaxWeight: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	status, body := post(t, ts, SolveRequest{Requests: []GraphRequest{
		// Certified Lawler on 3000 nodes takes far longer than 1ms.
		{ID: "doomed", Text: graphText(t, g), Algorithm: "lawler", Certify: true, DeadlineMillis: 1},
	}})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	res := decodeResults(t, body)[0]
	if res.OK || res.Error == nil || res.Error.Code != CodeDeadlineExceeded {
		t.Fatalf("want %s, got ok=%v err=%+v", CodeDeadlineExceeded, res.OK, res.Error)
	}
}

// TestQueueFullBackpressure saturates a 1-worker, 1-deep queue and asserts
// the overflow request is rejected with 429 + Retry-After while the admitted
// requests still complete correctly once the worker unblocks.
func TestQueueFullBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})
	release := make(chan struct{})
	s.testHookSolving = func(ctx context.Context) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}

	req := SolveRequest{Requests: []GraphRequest{{Text: "p mcm 2 2\na 1 2 3\na 2 1 5\n"}}}
	type reply struct {
		status int
		body   []byte
		err    error
	}
	replies := make(chan reply, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body, err := tryPost(ts, req)
			replies <- reply{status, body, err}
		}()
	}
	// Wait until both admission tokens are held (capacity Workers+QueueDepth
	// = 2), so the server is provably saturated before the overflow probe.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.admit) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never saturated: admit=%d", len(s.admit))
		}
		time.Sleep(time.Millisecond)
	}

	status, body := post(t, ts, req)
	if status != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d: %s", status, body)
	}
	if !bytes.Contains(body, []byte(CodeQueueFull)) {
		t.Fatalf("overflow body missing %s: %s", CodeQueueFull, body)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json",
		strings.NewReader(`{"requests":[{"text":"p mcm 1 1\na 1 1 1\n"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") != "3" {
		t.Fatalf("status %d Retry-After %q, want 429 with \"3\"", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	close(release)
	wg.Wait()
	close(replies)
	for r := range replies {
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("admitted request failed: %d %s", r.status, r.body)
		}
		res := decodeResults(t, r.body)[0]
		if !res.OK || res.Value == nil || res.Value.Num != 4 || res.Value.Den != 1 {
			t.Fatalf("admitted request wrong answer: %+v", res)
		}
	}
	if got := s.metrics.queueFull.Load(); got != 2 {
		t.Fatalf("queue-full metric %d, want 2", got)
	}
}

// TestGracefulDrain starts a solve, initiates a drain mid-flight, and
// asserts: new requests answer 503, health flips to draining, the in-flight
// request completes with a correct answer, and Drain returns only then.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	s.testHookSolving = func(ctx context.Context) {
		once.Do(func() { close(started) })
		select {
		case <-release:
		case <-ctx.Done():
		}
	}

	inflight := make(chan []byte, 1)
	go func() {
		_, body, err := tryPost(ts, SolveRequest{Requests: []GraphRequest{{Text: "p mcm 2 2\na 1 2 3\na 2 1 5\n"}}})
		if err != nil {
			body = []byte(err.Error())
		}
		inflight <- body
	}()
	<-started

	drainDone := make(chan error, 1)
	go func() { drainDone <- s.Drain(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain flag never set")
		}
		time.Sleep(time.Millisecond)
	}

	// New work is refused while the old solve is still running.
	status, body := post(t, ts, SolveRequest{Requests: []GraphRequest{{Text: "p mcm 1 1\na 1 1 1\n"}}})
	if status != http.StatusServiceUnavailable || !bytes.Contains(body, []byte(CodeDraining)) {
		t.Fatalf("during drain: status %d body %s", status, body)
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d", resp.StatusCode)
	}
	select {
	case err := <-drainDone:
		t.Fatalf("drain returned %v with a request in flight", err)
	default:
	}

	close(release)
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	res := decodeResults(t, <-inflight)[0]
	if !res.OK || res.Value == nil || res.Value.Num != 4 {
		t.Fatalf("in-flight request not completed correctly: %+v", res)
	}

	// An interrupted drain reports the failure instead of hanging.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestDrainTimeout pins that a drain bounded by an already-expired context
// reports the interruption instead of waiting forever.
func TestDrainTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	var once sync.Once
	s.testHookSolving = func(ctx context.Context) {
		once.Do(func() { close(started) })
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	go tryPost(ts, SolveRequest{Requests: []GraphRequest{{Text: "p mcm 2 2\na 1 2 3\na 2 1 5\n"}}})
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain with stuck request returned nil")
	}
}

// TestSessionWarmReuse pins the serving hot path: repeat topologies with
// perturbed weights must hit the warm-start cache, and certified and plain
// requests must use separate sessions.
func TestSessionWarmReuse(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	base, err := gen.Sprand(gen.SprandConfig{N: 20, M: 60, MinWeight: -100, MaxWeight: 100, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for round := int64(0); round < 3; round++ {
		arcs := append([]graph.Arc(nil), base.Arcs()...)
		for i := range arcs {
			arcs[i].Weight += round * int64(i%5)
		}
		g := graph.FromArcs(base.NumNodes(), arcs)
		want, _, err := verify.BruteForceMinMean(g)
		if err != nil {
			t.Fatal(err)
		}
		status, body := post(t, ts, SolveRequest{Requests: []GraphRequest{
			{ID: "plain", Text: graphText(t, g)},
			{ID: "certified", Text: graphText(t, g), Certify: true},
		}})
		if status != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, status, body)
		}
		for _, res := range decodeResults(t, body) {
			if !res.OK || res.Value.Num != want.Num() || res.Value.Den != want.Den() {
				t.Fatalf("round %d %s: %+v want %v", round, res.ID, res.Value, want)
			}
		}
	}
	plain, certified := s.SessionStats()
	if plain.WarmHits < 2 || certified.WarmHits < 2 {
		t.Fatalf("warm hits plain=%d certified=%d, want >=2 each (stats %+v / %+v)", plain.WarmHits, certified.WarmHits, plain, certified)
	}
}

// TestVarsAndHealth covers the observability endpoints: /debug/vars carries
// both serve- and solver-level counters, /healthz answers ok, and
// /debug/pprof/ is mounted on the same mux.
func TestVarsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if status, body := post(t, ts, SolveRequest{Requests: []GraphRequest{{Text: "p mcm 1 1\na 1 1 7\n"}}}); status != http.StatusOK {
		t.Fatalf("solve: %d %s", status, body)
	}

	resp, err := ts.Client().Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Serve  map[string]any `json:"serve"`
		Solver map[string]any `json:"solver"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := vars.Serve["graphs_ok"].(float64); got != 1 {
		t.Fatalf("graphs_ok %v", got)
	}
	if got := vars.Solver["solver_runs"].(float64); got < 1 {
		t.Fatalf("solver_runs %v", got)
	}
	if _, ok := vars.Solver["algorithms"].(map[string]any)["howard"]; !ok {
		t.Fatalf("per-algorithm counters missing: %v", vars.Solver["algorithms"])
	}

	for _, path := range []string{"/healthz", "/debug/pprof/"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
	}
}

// TestConcurrentMixedLoad fires many concurrent batches with mixed problems
// and deadlines and asserts every response is either a correct value or a
// typed error — never an empty 200 — while the server stays race-clean
// (this test is part of the -race e2e gate).
func TestConcurrentMixedLoad(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})

	// Everything the goroutines need is materialized up front: the helpers
	// below call t.Fatal, which is only legal on the test goroutine.
	type expect struct {
		text string
		raw  json.RawMessage
		want numeric.Rat
	}
	cases := make([]expect, 6)
	for i := range cases {
		g, err := gen.Sprand(gen.SprandConfig{N: 10, M: 30, MinWeight: -40, MaxWeight: 40, Seed: uint64(40 + i)})
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := verify.BruteForceMinMean(g)
		if err != nil {
			t.Fatal(err)
		}
		cases[i] = expect{graphText(t, g), graphJSON(t, g), want}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				e := cases[(c+round)%len(cases)]
				req := SolveRequest{Requests: []GraphRequest{
					{ID: "a", Text: e.text, Certify: round%2 == 0},
					{ID: "b", Graph: e.raw, Algorithm: "portfolio"},
					{ID: "c", Text: e.text, Problem: "ratio"},
					// A 1ms-deadline entry races admission against expiry; both
					// outcomes are legal, but it must never produce an empty 200.
					{ID: "d", Text: e.text, DeadlineMillis: 1},
				}}
				status, body, err := tryPost(ts, req)
				if err != nil {
					errs <- err
					return
				}
				if status == http.StatusTooManyRequests {
					continue // backpressure is a legal outcome under load
				}
				if status != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", status, body)
					return
				}
				results, err := tryDecodeResults(body)
				if err != nil {
					errs <- err
					return
				}
				for _, res := range results {
					switch {
					case res.OK && res.Error == nil && res.Value != nil:
						if res.ID == "a" || res.ID == "b" {
							if res.Value.Num != e.want.Num() || res.Value.Den != e.want.Den() {
								errs <- fmt.Errorf("%s: %+v want %v", res.ID, res.Value, e.want)
								return
							}
						}
					case !res.OK && res.Error != nil && res.Error.Code != "":
						// typed failure: fine
					default:
						errs <- fmt.Errorf("%s: neither value nor typed error: %+v", res.ID, res)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
