package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/ratio"
)

// The HTTP/JSON wire schema of the batch solve service. One POST /v1/solve
// request carries a batch of independent graphs; the response carries one
// result per graph in the same order. Request-level failures (malformed
// body, oversized body, full queue, draining) answer with a non-200 status
// and a single ErrorBody; per-graph failures never fail the batch — each
// result entry is either ok with a value or an ErrorBody with a typed code.
// docs/SERVING.md documents the schema and every error code.

// SolveRequest is the body of POST /v1/solve.
type SolveRequest struct {
	// Requests is the batch, solved independently and concurrently. At most
	// Config.MaxBatch entries.
	Requests []GraphRequest `json:"requests"`
	// DeadlineMillis is the default per-graph solve budget in milliseconds
	// for entries that do not set their own; 0 means Config.DefaultTimeout.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// GraphRequest is one graph plus its solve options. Exactly one of Text and
// Graph must be set.
type GraphRequest struct {
	// ID is an opaque client tag echoed back on the matching result.
	ID string `json:"id,omitempty"`
	// Text is the graph in the line format of docs/FORMATS.md
	// ("p mcm <n> <m>" + "a <from> <to> <weight> [transit]" records).
	Text string `json:"text,omitempty"`
	// Graph is the inline JSON arc-list form {"nodes": n, "arcs":
	// [{"from","to","weight","transit"}...]} with 0-based node ids. Kept
	// raw so one bad graph degrades to a per-graph error instead of
	// failing the whole batch.
	Graph json.RawMessage `json:"graph,omitempty"`
	// Problem selects "mean" (default) or "ratio".
	Problem string `json:"problem,omitempty"`
	// Maximize flips to the maximum cycle mean/ratio.
	Maximize bool `json:"maximize,omitempty"`
	// Algorithm names the solver ("howard" default; any name accepted by
	// core.ByName for means — including "portfolio[:a+b]" — or
	// ratio.ByName for ratios).
	Algorithm string `json:"algorithm,omitempty"`
	// Kernelize runs the internal/prep reductions before solving.
	Kernelize bool `json:"kernelize,omitempty"`
	// Certify attaches an exact optimality proof to the answer.
	Certify bool `json:"certify,omitempty"`
	// ApproxEpsilon is the approximation tolerance for the "approx"
	// algorithm; <= 0 requests an exact (sharpened) answer. Only valid with
	// "algorithm": "approx" (which is assumed when any approx_* field is set
	// and the algorithm is left empty) and "problem": "mean".
	ApproxEpsilon float64 `json:"approx_epsilon,omitempty"`
	// ApproxMode selects the approximation scheme: "chkl" (default,
	// relative error) or "ap" (additive entropic).
	ApproxMode string `json:"approx_mode,omitempty"`
	// ApproxSharpen follows the ε run with an exact Lawler pass seeded from
	// the certified interval, returning an exact answer.
	ApproxSharpen bool `json:"approx_sharpen,omitempty"`
	// DeadlineMillis overrides the batch-level solve budget for this graph.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// SolveResponse is the 200 body of POST /v1/solve.
type SolveResponse struct {
	Results []GraphResult `json:"results"`
}

// RatValue carries an exact rational plus its float rendering.
type RatValue struct {
	Num   int64   `json:"num"`
	Den   int64   `json:"den"`
	Rat   string  `json:"rat"`
	Float float64 `json:"float"`
}

func ratValue(r numeric.Rat) *RatValue {
	return &RatValue{Num: r.Num(), Den: r.Den(), Rat: r.String(), Float: r.Float64()}
}

// GraphResult is the outcome for one GraphRequest.
type GraphResult struct {
	ID string `json:"id,omitempty"`
	// Index is the entry's position in the request batch. Buffered responses
	// are already in request order; on the NDJSON streaming path lines arrive
	// in completion order and Index (plus ID) is how clients correlate.
	Index int  `json:"index"`
	OK    bool `json:"ok"`
	// Value is λ* (mean) or ρ* (ratio) when OK.
	Value *RatValue `json:"value,omitempty"`
	// Cycle is a critical cycle as arc IDs: indices into the request's arc
	// list (inline form) or the file order of its "a" records (text form).
	Cycle []graph.ArcID `json:"cycle,omitempty"`
	// Exact is false only for epsilon-mode approximate runs.
	Exact bool `json:"exact,omitempty"`
	// Approx marks a value that is not exact (approximation-tier or legacy
	// epsilon-mode run); when the run came from the "approx" algorithm,
	// ErrorBound certifies λ* ∈ [Value−ErrorBound, Value].
	Approx bool `json:"approx,omitempty"`
	// ErrorBound is the certified width of the approximation interval; zero
	// for exact answers.
	ErrorBound float64 `json:"error_bound,omitempty"`
	// Certified reports that the answer carries a verified exact optimality
	// proof (request had "certify": true and the proof passed).
	Certified bool `json:"certified,omitempty"`
	// Cached reports that the answer was served from the content-addressed
	// result cache without any solve work. False for the request that
	// actually solved (including singleflight leaders and their merged
	// waiters).
	Cached bool `json:"cached,omitempty"`
	// Algorithm echoes the solver that produced the answer.
	Algorithm string `json:"algorithm,omitempty"`
	// Counts holds the solver's representative operation counts.
	Counts *counter.Counts `json:"counts,omitempty"`
	// ElapsedMillis is the server-side solve wall clock.
	ElapsedMillis float64 `json:"elapsed_ms"`
	// Error is set instead of Value when OK is false.
	Error *ErrorBody `json:"error,omitempty"`
}

// ErrorBody is the structured error shape used both per graph and at the
// request level.
type ErrorBody struct {
	// Code is a stable machine-readable identifier; see docs/SERVING.md for
	// the full table.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// errorResponse is the non-200 request-level body.
type errorResponse struct {
	Error ErrorBody `json:"error"`
}

// StreamTrailer is the final line of an NDJSON streaming response: after one
// GraphResult line per graph (in completion order), the server emits exactly
// one trailer so clients can distinguish a complete stream from a truncated
// connection. docs/SERVING.md documents the framing.
type StreamTrailer struct {
	// Done is always true; its presence marks the line as the trailer (no
	// GraphResult line carries a "done" key).
	Done bool `json:"done"`
	// Results is the number of result lines emitted before the trailer. A
	// client-canceled stream may have fewer lines than request entries.
	Results int `json:"results"`
	// OK and Errors partition the emitted results.
	OK     int `json:"ok"`
	Errors int `json:"errors"`
	// ElapsedMillis is the whole stream's server-side wall clock.
	ElapsedMillis float64 `json:"elapsed_ms"`
}

// Request-level error codes (non-200 responses).
const (
	CodeBadRequest       = "bad_request"        // 400: malformed JSON, empty batch, bad options
	CodeBodyTooLarge     = "body_too_large"     // 413: body exceeds Config.MaxBodyBytes
	CodeBatchTooLarge    = "batch_too_large"    // 400: more graphs than Config.MaxBatch
	CodeQueueFull        = "queue_full"         // 429: admission queue saturated; Retry-After set
	CodeDraining         = "draining"           // 503: server is shutting down
	CodeMethodNotAllowed = "method_not_allowed" // 405
	CodeUnknownSession   = "unknown_session"    // 404: no such /v1/session id (or it expired)
	CodeSessionLimit     = "session_limit"      // 429: MaxSessions live sessions; Retry-After set
)

// Per-graph error codes (inside a 200 batch response).
const (
	CodeBadGraph             = "bad_graph"              // unparsable or oversized graph
	CodeUnknownAlgorithm     = "unknown_algorithm"      // name not in the registries
	CodeAcyclic              = "acyclic"                // no cycle exists
	CodeWeightRange          = "weight_range"           // weights beyond ±(2^31−1)
	CodeNumericRange         = "numeric_range"          // exact arithmetic would overflow
	CodeIterationLimit       = "iteration_limit"        // solver safety cap hit
	CodeCertificationFailed  = "certification_failed"   // optimality proof failed
	CodeNonPositiveTransit   = "non_positive_transit"   // ratio undefined: t(C) <= 0 cycle
	CodeNotStronglyConnected = "not_strongly_connected" // direct solver precondition
	CodeDeadlineExceeded     = "deadline_exceeded"      // solve budget expired mid-run
	CodeBadDelta             = "bad_delta"              // session delta rejected: graph unchanged
	CodeInternal             = "internal"               // anything unclassified
)

// solveErrorBody maps a typed solver error onto its wire code. The drivers
// wrap sentinel errors with context (component sizes, algorithm names), so
// classification goes through errors.Is; the full chain text is kept as the
// message. Cancellation always classifies as deadline_exceeded — the only
// canceler on the serve path is the per-request context.
func solveErrorBody(err error) *ErrorBody {
	code := CodeInternal
	switch {
	case errors.Is(err, core.ErrCanceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		code = CodeDeadlineExceeded
	case errors.Is(err, core.ErrAcyclic), errors.Is(err, ratio.ErrAcyclic):
		code = CodeAcyclic
	case errors.Is(err, core.ErrWeightRange):
		code = CodeWeightRange
	case errors.Is(err, core.ErrNumericRange), errors.Is(err, ratio.ErrNumericRange):
		code = CodeNumericRange
	case errors.Is(err, core.ErrCertification), errors.Is(err, ratio.ErrCertification):
		code = CodeCertificationFailed
	case errors.Is(err, core.ErrIterationLimit), errors.Is(err, ratio.ErrIterationLimit):
		code = CodeIterationLimit
	case errors.Is(err, ratio.ErrNonPositiveTransit):
		code = CodeNonPositiveTransit
	case errors.Is(err, core.ErrNotStronglyConnected), errors.Is(err, ratio.ErrNotStronglyConnected):
		code = CodeNotStronglyConnected
	case errors.Is(err, core.ErrApproxMode):
		// Normally caught by resolveRequest before any solve work; kept for
		// callers that reach the drivers directly.
		code = CodeBadRequest
	}
	return &ErrorBody{Code: code, Message: err.Error()}
}

// httpStatusFor maps request-level codes to their HTTP status.
func httpStatusFor(code string) int {
	switch code {
	case CodeBodyTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeQueueFull, CodeSessionLimit:
		return http.StatusTooManyRequests
	case CodeUnknownSession:
		return http.StatusNotFound
	case CodeDraining:
		return http.StatusServiceUnavailable
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	default:
		return http.StatusBadRequest
	}
}
