// Package serve implements the batch solve service behind cmd/mcmd: an
// HTTP/JSON front end that routes graphs through the internal/core and
// internal/ratio drivers with per-request deadlines, cooperative
// cancellation, warm-started Session reuse for repeat topologies, and a
// bounded worker pool with explicit backpressure.
//
// Concurrency model. Admission and execution are two separate token pools:
// a request's graphs are admitted all-or-nothing against Workers+QueueDepth
// admission tokens (a full queue answers 429 with Retry-After, before any
// solve work starts), and each admitted graph then occupies one of Workers
// execution tokens while it actually solves. Goroutines are therefore
// bounded by Workers+QueueDepth regardless of offered load. Shutdown is a
// drain: new requests answer 503 while every in-flight batch runs to
// completion (see Drain), which is what lets cmd/mcmd exit cleanly on
// SIGTERM without dropping accepted work.
//
// docs/SERVING.md documents the wire schema, the error-code table, and the
// backpressure and drain semantics.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/ratio"
	"repro/internal/servecache"
)

// Config tunes a Server. The zero value of every field selects a sensible
// default (see withDefaults).
type Config struct {
	// Workers bounds concurrently executing solves; default runtime.NumCPU().
	Workers int
	// QueueDepth bounds admitted-but-not-yet-executing graphs beyond
	// Workers; default 4×Workers. Admission beyond Workers+QueueDepth
	// answers 429.
	QueueDepth int
	// MaxBatch bounds graphs per buffered request; default 64.
	MaxBatch int
	// MaxStreamBatch bounds graphs per NDJSON streaming request; default
	// 1<<20. Streaming requests pipeline through a bounded admission window
	// instead of being admitted all-or-nothing, so the limit can be far
	// larger than MaxBatch without unbounded memory.
	MaxStreamBatch int
	// CacheEntries bounds the content-addressed result cache (stored
	// results, LRU-evicted); default 4096. See NoCache to disable.
	CacheEntries int
	// NoCache disables the result cache entirely: every request solves.
	NoCache bool
	// MaxBodyBytes bounds the request body; default 8 MiB. Larger bodies
	// answer 413 without being read further.
	MaxBodyBytes int64
	// DefaultTimeout is the per-graph solve budget when the request does not
	// set one; default 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested budgets; default 2m.
	MaxTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses; default 1s.
	RetryAfter time.Duration
	// MaxSessions bounds live /v1/session sessions; default 64. Creation
	// beyond the cap answers 429 session_limit.
	MaxSessions int
	// SessionTTL is how long an idle session (no solve, no delta, no open
	// stream) survives before lazy expiry; default 10m.
	SessionTTL time.Duration
	// Metrics aggregates solver-level events (per-algorithm counters,
	// duration histograms); created internally when nil and exposed on
	// /debug/vars either way.
	Metrics *obs.Metrics
	// Tracer, when non-nil, additionally receives every solver event (e.g.
	// a log tracer); fanned in alongside Metrics.
	Tracer *obs.Trace
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxStreamBatch <= 0 {
		c.MaxStreamBatch = 1 << 20
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 10 * time.Minute
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	return c
}

// Server is the batch solve service. Create with NewServer; it implements
// http.Handler and mounts /v1/solve, /healthz, /debug/vars, and
// /debug/pprof/ on its internal mux.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	baseOpt core.Options // tracer wired once; per-request fields copied in

	// sessions are the warm-start caches for the Howard mean hot path, one
	// per certify flavor so cached policies and certificates never mix.
	sessionPlain     *core.Session
	sessionCertified *core.Session

	// cache is the content-addressed result cache (fingerprint + options →
	// stored outcome, with singleflight dedup); nil when Config.NoCache.
	// Consulted after decode and before any worker slot, so hits and merged
	// duplicates never occupy a worker.
	cache *servecache.Cache

	admit   chan struct{} // admission tokens: Workers+QueueDepth
	workers chan struct{} // execution tokens: Workers

	metrics serverMetrics

	// sessions is the /v1/session registry (see session.go); sessionSeq
	// mints IDs. Session state lives outside the result cache on purpose:
	// a mutable graph's intermediate fingerprints must never be served to,
	// or poisoned by, the content-addressed /v1/solve path.
	sessMu     sync.Mutex
	sessions   map[string]*sessionEntry
	sessionSeq atomic.Int64

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup

	// drainCh is closed (once) when Drain begins; long-lived session delta
	// streams select on it so shutdown reaches them mid-conversation — they
	// emit their terminal frame and return instead of wedging the drain.
	drainCh   chan struct{}
	drainOnce sync.Once

	// testHookSolving, when non-nil, runs inside the worker slot just before
	// the solver starts; tests use it to hold workers busy deterministically
	// (queue saturation, drain ordering, deadline expiry mid-solve).
	testHookSolving func(ctx context.Context)
}

// NewServer builds a ready-to-serve Server from cfg.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		admit:    make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		workers:  make(chan struct{}, cfg.Workers),
		sessions: make(map[string]*sessionEntry),
		drainCh:  make(chan struct{}),
	}
	tracer := cfg.Metrics.Tracer()
	if cfg.Tracer != nil {
		tracer = obs.Multi(tracer, cfg.Tracer)
	}
	s.baseOpt = core.Options{Tracer: tracer}
	if !cfg.NoCache {
		s.cache = servecache.New(cfg.CacheEntries, tracer)
	}
	sessOpt := s.baseOpt
	s.sessionPlain = core.NewSession(sessOpt)
	sessOpt.Certify = true
	s.sessionCertified = core.NewSession(sessOpt)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/v1/session", s.handleSessionCreate)
	s.mux.HandleFunc("/v1/session/{id}", s.handleSessionByID)
	s.mux.HandleFunc("/v1/session/{id}/deltas", s.handleSessionDeltas)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/debug/vars", s.handleVars)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Metrics returns the solver-level collector (also on /debug/vars).
func (s *Server) Metrics() *obs.Metrics { return s.cfg.Metrics }

// SessionStats returns the warm-start cache counters of the plain and
// certified Howard sessions.
func (s *Server) SessionStats() (plain, certified core.SessionStats) {
	return s.sessionPlain.Stats(), s.sessionCertified.Stats()
}

// enter registers one in-flight request unless the server is draining.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// Drain stops admitting new requests (they answer 503) and waits for every
// in-flight request to complete, or for ctx to expire. Open session delta
// streams are told first (drainCh): each emits its terminal frame with
// "draining": true and returns, so a long-lived stream never wedges the
// drain. Safe to call more than once. cmd/mcmd calls it on SIGTERM/SIGINT
// before exiting.
func (s *Server) Drain(ctx context.Context) error {
	// Close the drain signal before flipping the 503 gate: a stream that
	// observes drainCh must be able to finish its in-flight write, and any
	// admission racing with the flip still lands in the WaitGroup we wait on.
	s.drainOnce.Do(func() { close(s.drainCh) })
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with requests in flight: %w", ctx.Err())
	}
}

// Draining reports whether Drain has been initiated.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// tryAdmit acquires n admission tokens without blocking; all or nothing.
func (s *Server) tryAdmit(n int) bool {
	for i := 0; i < n; i++ {
		select {
		case s.admit <- struct{}{}:
		default:
			for j := 0; j < i; j++ {
				<-s.admit
			}
			return false
		}
	}
	return true
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes a request-level error body with its mapped status.
func writeError(w http.ResponseWriter, code, message string) {
	writeJSON(w, httpStatusFor(code), errorResponse{Error: ErrorBody{Code: code, Message: message}})
}

// handleHealth answers readiness: 200 while serving, 503 while draining.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleVars exposes the serve- and solver-level metrics as one JSON tree.
// The server deliberately keeps its own /debug/vars handler instead of the
// process-global expvar registry so several Servers (tests, embedded use)
// never fight over expvar's forbid-duplicate-names rule.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	vars := map[string]any{
		"serve":    s.metrics.Snapshot(),
		"solver":   s.cfg.Metrics.Snapshot(),
		"sessions": s.sessionVars(),
		"runtime":  runtimeVars(),
	}
	if s.cache != nil {
		vars["cache"] = s.cache.Stats()
	}
	writeJSON(w, http.StatusOK, vars)
}

// runtimeVars reports process memory and scheduler gauges; the sustained-
// load harness polls these to verify the streaming path's bounded-RSS claim.
func runtimeVars() map[string]any {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return map[string]any{
		"heap_alloc_bytes":  ms.HeapAlloc,
		"heap_sys_bytes":    ms.HeapSys,
		"total_alloc_bytes": ms.TotalAlloc,
		"num_gc":            ms.NumGC,
		"goroutines":        runtime.NumGoroutine(),
	}
}

// CacheStats returns the result-cache counters and whether the cache is
// enabled at all.
func (s *Server) CacheStats() (servecache.Stats, bool) {
	if s.cache == nil {
		return servecache.Stats{}, false
	}
	return s.cache.Stats(), true
}

// handleSolve is POST /v1/solve: decode, admit, fan out, join, answer.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, CodeMethodNotAllowed, "use POST")
		return
	}
	if !s.enter() {
		s.metrics.draining.Add(1)
		writeError(w, CodeDraining, "server is draining")
		return
	}
	defer s.inflight.Done()
	s.metrics.requests.Add(1)
	start := time.Now()

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.metrics.bodyTooLarge.Add(1)
			writeError(w, CodeBodyTooLarge, fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		s.metrics.badRequest.Add(1)
		writeError(w, CodeBadRequest, "malformed JSON body: "+err.Error())
		return
	}
	if len(req.Requests) == 0 {
		s.metrics.badRequest.Add(1)
		writeError(w, CodeBadRequest, `empty batch: "requests" must carry at least one graph`)
		return
	}
	stream := wantsStream(r)
	limit := s.cfg.MaxBatch
	if stream {
		limit = s.cfg.MaxStreamBatch
	}
	if len(req.Requests) > limit {
		s.metrics.badRequest.Add(1)
		writeError(w, CodeBatchTooLarge, fmt.Sprintf("batch of %d exceeds the %d-graph limit", len(req.Requests), limit))
		return
	}
	if stream {
		s.streamSolve(w, r, &req, start)
		return
	}

	// Backpressure: the whole batch is admitted atomically or not at all, so
	// a half-admitted batch can never wedge the queue.
	if !s.tryAdmit(len(req.Requests)) {
		s.metrics.queueFull.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeError(w, CodeQueueFull, "solve queue is full; retry later")
		return
	}

	results := make([]GraphResult, len(req.Requests))
	var wg sync.WaitGroup
	for i := range req.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-s.admit }() // release this graph's admission token
			results[i] = s.solveOne(r.Context(), &req, &req.Requests[i])
			results[i].Index = i
		}(i)
	}
	wg.Wait()

	s.metrics.ok.Add(1)
	s.metrics.requestDuration.Observe(time.Since(start))
	writeJSON(w, http.StatusOK, SolveResponse{Results: results})
}

// wantsStream reports whether the client asked for the NDJSON streaming
// response variant (Accept: application/x-ndjson or ?stream=1).
func wantsStream(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "1" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// decodeGraph materializes one request entry's graph, rejecting oversized
// dimensions before any index allocation (graph.Read and the JSON decoder
// both enforce graph.MaxDim).
func decodeGraph(gr *GraphRequest) (*graph.Graph, *ErrorBody) {
	switch {
	case gr.Text != "" && len(gr.Graph) > 0:
		return nil, &ErrorBody{Code: CodeBadGraph, Message: `exactly one of "text" and "graph" may be set`}
	case gr.Text != "":
		g, err := graph.Read(strings.NewReader(gr.Text))
		if err != nil {
			return nil, &ErrorBody{Code: CodeBadGraph, Message: err.Error()}
		}
		return g, nil
	case len(gr.Graph) > 0:
		g := new(graph.Graph)
		if err := json.Unmarshal(gr.Graph, g); err != nil {
			return nil, &ErrorBody{Code: CodeBadGraph, Message: err.Error()}
		}
		return g, nil
	default:
		return nil, &ErrorBody{Code: CodeBadGraph, Message: `one of "text" and "graph" must be set`}
	}
}

// budget resolves the per-graph solve budget.
func (s *Server) budget(batch *SolveRequest, gr *GraphRequest) time.Duration {
	ms := gr.DeadlineMillis
	if ms <= 0 {
		ms = batch.DeadlineMillis
	}
	if ms <= 0 {
		return s.cfg.DefaultTimeout
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// solveOne runs one graph through decode, cache, queue, and solver, and
// shapes the outcome. It never panics (the drivers' panic-free boundary
// converts numeric overflow into typed errors) and never returns an empty
// success.
func (s *Server) solveOne(ctx context.Context, batch *SolveRequest, gr *GraphRequest) (res GraphResult) {
	res.ID = gr.ID
	s.metrics.graphs.Add(1)
	start := time.Now()
	defer func() {
		elapsed := time.Since(start)
		res.ElapsedMillis = float64(elapsed) / 1e6
		s.metrics.solveDuration.Observe(elapsed)
		if res.Error != nil {
			s.metrics.graphErrors.Add(1)
			if res.Error.Code == CodeDeadlineExceeded {
				s.metrics.deadlines.Add(1)
			}
		} else {
			s.metrics.graphOK.Add(1)
		}
	}()

	g, errBody := decodeGraph(gr)
	if errBody != nil {
		res.Error = errBody
		return res
	}
	problem, algoName, errBody := resolveRequest(gr)
	if errBody != nil {
		res.Error = errBody
		return res
	}
	res.Algorithm = algoName

	ctx, cancel := context.WithTimeout(ctx, s.budget(batch, gr))
	defer cancel()

	if s.cache == nil {
		out, err := s.solveWorker(ctx, gr, g, problem, algoName)
		fillOutcome(&res, out, err)
		return res
	}

	// Cache lookup happens before any worker slot: a hit costs no solve
	// capacity, and N concurrent identical requests merge onto one solve
	// (singleflight). Failed or canceled solves are never stored, so a
	// mid-solve deadline expiry cannot poison the key for later requests.
	key := servecache.Key{Graph: g.Fingerprint(), Opt: servecache.Options{
		Problem:       problem,
		Maximize:      gr.Maximize,
		Algorithm:     algoName,
		Kernelize:     gr.Kernelize,
		Certify:       gr.Certify,
		ApproxEpsilon: gr.ApproxEpsilon,
		ApproxMode:    gr.ApproxMode, // canonicalized by resolveRequest
		ApproxSharpen: gr.ApproxSharpen,
	}}
	out, src, err := s.cache.Do(ctx, key, func(ctx context.Context) (*servecache.Result, error) {
		return s.solveWorker(ctx, gr, g, problem, algoName)
	})
	res.Cached = src == servecache.SourceHit
	fillOutcome(&res, out, err)
	return res
}

// resolveRequest validates the problem/algorithm pair and resolves the
// defaults, before any admission, cache, or solve work.
func resolveRequest(gr *GraphRequest) (problem, algoName string, errBody *ErrorBody) {
	algoName = gr.Algorithm
	hasApprox := gr.ApproxEpsilon != 0 || gr.ApproxMode != "" || gr.ApproxSharpen
	if algoName == "" {
		if hasApprox {
			algoName = "approx"
		} else {
			algoName = "howard"
		}
	}
	if algoName == "approx" {
		if gr.Problem == "ratio" {
			return "", "", &ErrorBody{Code: CodeBadRequest, Message: `the "approx" algorithm solves "problem": "mean" only`}
		}
		mode, err := core.CanonicalApproxMode(gr.ApproxMode)
		if err != nil {
			return "", "", &ErrorBody{Code: CodeBadRequest, Message: err.Error()}
		}
		// Canonicalize in place so the cache key (and the dispatch options)
		// see one spelling for the default mode.
		gr.ApproxMode = mode
	} else if hasApprox {
		return "", "", &ErrorBody{Code: CodeBadRequest, Message: fmt.Sprintf("approx_* options require \"algorithm\": \"approx\", got %q", algoName)}
	}
	switch gr.Problem {
	case "", "mean":
		if _, err := core.ByName(algoName); err != nil {
			return "", "", &ErrorBody{Code: CodeUnknownAlgorithm, Message: err.Error()}
		}
		return "mean", algoName, nil
	case "ratio":
		if _, err := ratio.ByName(algoName); err != nil {
			return "", "", &ErrorBody{Code: CodeUnknownAlgorithm, Message: err.Error()}
		}
		return "ratio", algoName, nil
	default:
		return "", "", &ErrorBody{Code: CodeBadRequest, Message: fmt.Sprintf("unknown problem %q (want \"mean\" or \"ratio\")", gr.Problem)}
	}
}

// solveWorker occupies an execution slot and runs the solve; this is the
// singleflight leader's path (and the only path with the cache disabled).
func (s *Server) solveWorker(ctx context.Context, gr *GraphRequest, g *graph.Graph, problem, algoName string) (*servecache.Result, error) {
	// Execution slot: waiting here is the queue; an expired budget while
	// queued is the same typed failure as one mid-solve.
	select {
	case s.workers <- struct{}{}:
		defer func() { <-s.workers }()
	case <-ctx.Done():
		return nil, fmt.Errorf("solve budget expired while queued: %w", ctx.Err())
	}
	// The select above picks at random when both the worker slot and the
	// expired budget are ready; never start a solve on a dead budget.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("solve budget expired while queued: %w", err)
	}
	if hook := s.testHookSolving; hook != nil {
		hook(ctx)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return s.dispatch(ctx, gr, g, problem, algoName)
}

// dispatch routes to the mean or ratio driver and shapes the outcome into
// the request-independent form the cache stores.
func (s *Server) dispatch(ctx context.Context, gr *GraphRequest, g *graph.Graph, problem, algoName string) (*servecache.Result, error) {
	opt := s.baseOpt
	opt.Kernelize = gr.Kernelize
	opt.Certify = gr.Certify
	opt.Approx = core.ApproxOptions{Epsilon: gr.ApproxEpsilon, Mode: gr.ApproxMode}
	opt.ApproxSharpen = gr.ApproxSharpen

	if problem == "mean" {
		// Hot path: minimizing with plain Howard reuses the session cache,
		// so repeat topologies warm-start instead of solving cold.
		if algoName == "howard" && !gr.Maximize && !gr.Kernelize {
			sess := s.sessionPlain
			if gr.Certify {
				sess = s.sessionCertified
			}
			r, err := sess.SolveContext(ctx, g)
			if err != nil {
				return nil, err
			}
			return meanOutcome(r), nil
		}
		algo, err := core.ByName(algoName)
		if err != nil {
			return nil, err
		}
		opt, stop := opt.WithCancelContext(ctx)
		defer stop()
		var r core.Result
		if gr.Maximize {
			r, err = core.MaximumCycleMean(g, algo, opt)
		} else {
			r, err = core.MinimumCycleMean(g, algo, opt)
		}
		if err != nil {
			return nil, err
		}
		return meanOutcome(r), nil
	}
	algo, err := ratio.ByName(algoName)
	if err != nil {
		return nil, err
	}
	opt, stop := opt.WithCancelContext(ctx)
	defer stop()
	var r ratio.Result
	if gr.Maximize {
		r, err = ratio.MaximumCycleRatio(g, algo, opt)
	} else {
		r, err = ratio.MinimumCycleRatio(g, algo, opt)
	}
	if err != nil {
		return nil, err
	}
	return &servecache.Result{
		Value:     r.Ratio,
		Cycle:     r.Cycle,
		Exact:     r.Exact,
		Approx:    !r.Exact,
		Certified: r.Certificate != nil,
		Counts:    r.Counts,
	}, nil
}

// meanOutcome shapes a core.Result into the cacheable form.
func meanOutcome(r core.Result) *servecache.Result {
	return &servecache.Result{
		Value:      r.Mean,
		Cycle:      r.Cycle,
		Exact:      r.Exact,
		Approx:     !r.Exact,
		ErrorBound: r.ErrorBound,
		Certified:  r.Certificate != nil,
		Counts:     r.Counts,
	}
}

// fillOutcome shapes a solve outcome (or its error) into the wire form.
func fillOutcome(res *GraphResult, out *servecache.Result, err error) {
	if err != nil {
		res.Error = solveErrorBody(err)
		return
	}
	res.OK = true
	res.Value = ratValue(out.Value)
	res.Cycle = out.Cycle
	res.Exact = out.Exact
	res.Approx = out.Approx
	res.ErrorBound = out.ErrorBound
	res.Certified = out.Certified
	counts := out.Counts
	res.Counts = &counts
}
