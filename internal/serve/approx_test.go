package serve

import (
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// Serve-path tests for the approximation tier: the "approx" algorithm over
// the HTTP boundary, the approx/error_bound response marking, the exact
// sharpened variant, and the upfront validation of the approx_* knobs.

// TestApproxSolveOverHTTP pins the wire semantics: an ε run answers with
// approx=true and a certified error_bound containing the exact λ*, while a
// sharpened run answers bit-identically to the exact solver with
// approx=false and error_bound absent.
func TestApproxSolveOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	g, err := gen.Sprand(gen.SprandConfig{N: 40, M: 160, MinWeight: -80, MaxWeight: 80, Seed: 97})
	if err != nil {
		t.Fatal(err)
	}
	howard, err := core.ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	exact, err := core.MinimumCycleMean(g, howard, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	text := graphText(t, g)

	run := func(gr GraphRequest) GraphResult {
		status, body := post(t, ts, SolveRequest{Requests: []GraphRequest{gr}})
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", gr.ID, status, body)
		}
		res := decodeResults(t, body)[0]
		if !res.OK {
			t.Fatalf("%s: %+v", gr.ID, res.Error)
		}
		return res
	}

	// ε run: value is a real cycle's mean ≥ λ*, and λ* ≥ value − bound.
	res := run(GraphRequest{ID: "eps", Text: text, Algorithm: "approx", ApproxEpsilon: 0.05})
	if res.Algorithm != "approx" {
		t.Errorf("algorithm echo %q, want approx", res.Algorithm)
	}
	lambda := exact.Mean.Float64()
	const slack = 1e-9
	if res.Value.Float < lambda-slack {
		t.Errorf("approx value %g below exact λ* %g", res.Value.Float, lambda)
	}
	if res.Value.Float-res.ErrorBound > lambda+slack {
		t.Errorf("certified lower %g above exact λ* %g", res.Value.Float-res.ErrorBound, lambda)
	}
	if res.Exact != (res.ErrorBound == 0) {
		t.Errorf("exact=%v inconsistent with error_bound=%g", res.Exact, res.ErrorBound)
	}
	if res.Approx == res.Exact {
		t.Errorf("approx=%v must be the negation of exact=%v", res.Approx, res.Exact)
	}

	// Omitting the algorithm with an approx_* knob set selects "approx".
	if res := run(GraphRequest{ID: "defaulted", Text: text, ApproxEpsilon: 0.05}); res.Algorithm != "approx" {
		t.Errorf("defaulted algorithm %q, want approx", res.Algorithm)
	}

	// Sharpened: bit-identical to the exact solver, marked exact.
	sh := run(GraphRequest{ID: "sharpen", Text: text, Algorithm: "approx", ApproxEpsilon: 0.05, ApproxSharpen: true})
	if !sh.Exact || sh.Approx || sh.ErrorBound != 0 {
		t.Errorf("sharpened: exact=%v approx=%v bound=%g, want exact", sh.Exact, sh.Approx, sh.ErrorBound)
	}
	if sh.Value.Num != exact.Mean.Num() || sh.Value.Den != exact.Mean.Den() {
		t.Errorf("sharpened value %d/%d, exact %v", sh.Value.Num, sh.Value.Den, exact.Mean)
	}
}

// TestApproxRequestValidation pins the upfront rejections: a bad mode, the
// approx knobs on a non-approx algorithm, and the ratio problem all answer
// with a per-graph bad_request before any solve work.
func TestApproxRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	text := "p mcm 2 2\na 1 2 3\na 2 1 5\n"

	cases := []struct {
		name string
		gr   GraphRequest
	}{
		{"bad mode", GraphRequest{Text: text, Algorithm: "approx", ApproxMode: "bogus"}},
		{"knobs on karp", GraphRequest{Text: text, Algorithm: "karp", ApproxEpsilon: 0.05}},
		{"sharpen on howard", GraphRequest{Text: text, Algorithm: "howard", ApproxSharpen: true}},
		{"ratio problem", GraphRequest{Text: text, Problem: "ratio", Algorithm: "approx", ApproxEpsilon: 0.05}},
	}
	for _, tc := range cases {
		status, body := post(t, ts, SolveRequest{Requests: []GraphRequest{tc.gr}})
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.name, status, body)
		}
		res := decodeResults(t, body)[0]
		if res.OK || res.Error == nil || res.Error.Code != CodeBadRequest {
			t.Errorf("%s: %+v, want per-graph %s", tc.name, res, CodeBadRequest)
		}
	}
}
