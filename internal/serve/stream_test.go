package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/verify"
)

// tryPostStream sends req with ?stream=1 and parses the NDJSON response:
// one GraphResult per line, then exactly one trailer line. Safe from any
// goroutine (no t.Fatal).
func tryPostStream(ts *httptest.Server, req SolveRequest) ([]GraphResult, StreamTrailer, error) {
	var trailer StreamTrailer
	data, err := json.Marshal(req)
	if err != nil {
		return nil, trailer, err
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/solve?stream=1", "application/json", bytes.NewReader(data))
	if err != nil {
		return nil, trailer, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var out bytes.Buffer
		_, _ = out.ReadFrom(resp.Body)
		return nil, trailer, fmt.Errorf("status %d: %s", resp.StatusCode, out.String())
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		return nil, trailer, fmt.Errorf("content type %q, want application/x-ndjson", ct)
	}

	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var results []GraphResult
	sawTrailer := false
	for scanner.Scan() {
		line := bytes.TrimSpace(scanner.Bytes())
		if len(line) == 0 {
			continue
		}
		if sawTrailer {
			return nil, trailer, fmt.Errorf("line after trailer: %s", line)
		}
		var probe struct {
			Done *bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, trailer, fmt.Errorf("unparsable stream line: %v\n%s", err, line)
		}
		if probe.Done != nil {
			if err := json.Unmarshal(line, &trailer); err != nil {
				return nil, trailer, err
			}
			sawTrailer = true
			continue
		}
		var res GraphResult
		if err := json.Unmarshal(line, &res); err != nil {
			return nil, trailer, fmt.Errorf("unparsable result line: %v\n%s", err, line)
		}
		results = append(results, res)
	}
	if err := scanner.Err(); err != nil {
		return nil, trailer, err
	}
	if !sawTrailer {
		return nil, trailer, fmt.Errorf("stream ended without a trailer (%d result lines)", len(results))
	}
	return results, trailer, nil
}

// postStream is tryPostStream for the test goroutine.
func postStream(t testing.TB, ts *httptest.Server, req SolveRequest) ([]GraphResult, StreamTrailer) {
	t.Helper()
	results, trailer, err := tryPostStream(ts, req)
	if err != nil {
		t.Fatal(err)
	}
	return results, trailer
}

// TestStreamBasic pins the NDJSON framing: one result line per graph in some
// completion order with Index correlating back to the batch, per-graph typed
// errors inline, and exactly one trailer with consistent counts.
func TestStreamBasic(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	g, err := gen.Sprand(gen.SprandConfig{N: 8, M: 20, MinWeight: -50, MaxWeight: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := verify.BruteForceMinMean(g)
	if err != nil {
		t.Fatal(err)
	}

	results, trailer := postStream(t, ts, SolveRequest{Requests: []GraphRequest{
		{ID: "good-0", Text: graphText(t, g)},
		{ID: "bad", Text: "p mcm 2 1\na 1 5 3\n"},
		{ID: "good-2", Graph: graphJSON(t, g)},
	}})
	if len(results) != 3 {
		t.Fatalf("%d result lines, want 3", len(results))
	}
	if !trailer.Done || trailer.Results != 3 || trailer.OK != 2 || trailer.Errors != 1 {
		t.Fatalf("trailer %+v, want done with 3 results (2 ok, 1 error)", trailer)
	}
	seen := map[int]bool{}
	for _, res := range results {
		if seen[res.Index] {
			t.Fatalf("index %d emitted twice", res.Index)
		}
		seen[res.Index] = true
		switch res.Index {
		case 0, 2:
			if !res.OK || res.Value == nil || res.Value.Num != want.Num() || res.Value.Den != want.Den() {
				t.Fatalf("index %d (%s): %+v, oracle %v", res.Index, res.ID, res.Value, want)
			}
		case 1:
			if res.OK || res.Error == nil || res.Error.Code != CodeBadGraph {
				t.Fatalf("index 1: want %s, got %+v", CodeBadGraph, res)
			}
		default:
			t.Fatalf("unexpected index %d", res.Index)
		}
	}
}

// TestStreamAcceptHeader asserts the Accept: application/x-ndjson spelling
// selects streaming, without the query parameter.
func TestStreamAcceptHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := []byte(`{"requests":[{"text":"p mcm 2 2\na 1 2 3\na 2 1 5\n"}]}`)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(out.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("%d lines, want result + trailer:\n%s", len(lines), out.String())
	}
	if !bytes.Contains(lines[1], []byte(`"done":true`)) {
		t.Fatalf("last line is not the trailer: %s", lines[1])
	}
}

// TestStreamBeyondBufferedLimit is the bounded-memory claim's functional
// half: a batch far over both MaxBatch and the admission window
// (Workers+QueueDepth = 3) streams to completion, because the feeder
// pipelines entries through the window instead of admitting all-or-nothing.
// The buffered path must keep rejecting the same batch.
func TestStreamBeyondBufferedLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 1, MaxBatch: 4})

	g, err := gen.Sprand(gen.SprandConfig{N: 6, M: 15, MinWeight: -20, MaxWeight: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := verify.BruteForceMinMean(g)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	req := SolveRequest{Requests: make([]GraphRequest, n)}
	for i := range req.Requests {
		req.Requests[i] = GraphRequest{ID: fmt.Sprintf("g%d", i), Text: graphText(t, g)}
	}

	status, body := post(t, ts, req)
	if status != http.StatusBadRequest || !bytes.Contains(body, []byte(CodeBatchTooLarge)) {
		t.Fatalf("buffered path accepted %d graphs: %d %s", n, status, body)
	}

	results, trailer := postStream(t, ts, req)
	if len(results) != n || trailer.Results != n || trailer.OK != n || trailer.Errors != 0 {
		t.Fatalf("streamed %d lines, trailer %+v, want %d ok", len(results), trailer, n)
	}
	for _, res := range results {
		if !res.OK || res.Value == nil || res.Value.Num != want.Num() || res.Value.Den != want.Den() {
			t.Fatalf("%s: %+v, oracle %v", res.ID, res.Value, want)
		}
	}
}

// TestStreamBatchTooLarge pins the streaming-specific batch cap.
func TestStreamBatchTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxStreamBatch: 8})
	req := SolveRequest{Requests: make([]GraphRequest, 9)}
	for i := range req.Requests {
		req.Requests[i] = GraphRequest{Text: "p mcm 1 1\na 1 1 1\n"}
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/solve?stream=1", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(out.Bytes(), []byte(CodeBatchTooLarge)) {
		t.Fatalf("status %d: %s", resp.StatusCode, out.String())
	}
}

// TestStreamDeadline asserts per-graph deadlines behave identically on the
// streaming path: each expired graph gets its typed error line, the stream
// still ends with a complete trailer.
func TestStreamDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, NoCache: true})
	s.testHookSolving = func(ctx context.Context) { <-ctx.Done() }

	results, trailer := postStream(t, ts, SolveRequest{
		DeadlineMillis: 60,
		Requests: []GraphRequest{
			{ID: "a", Text: "p mcm 2 2\na 1 2 3\na 2 1 5\n"},
			{ID: "b", Text: "p mcm 2 2\na 1 2 3\na 2 1 5\n"},
		},
	})
	if len(results) != 2 || trailer.Errors != 2 || trailer.OK != 0 {
		t.Fatalf("results %d, trailer %+v; want 2 deadline errors", len(results), trailer)
	}
	for _, res := range results {
		if res.OK || res.Error == nil || res.Error.Code != CodeDeadlineExceeded {
			t.Fatalf("%s: want %s, got %+v", res.ID, CodeDeadlineExceeded, res)
		}
	}
}

// TestStreamClientCancel asserts a canceled streaming request unwinds
// cleanly: the feeder stops spawning, every admission token returns, and a
// subsequent drain completes — no leaked goroutines holding the pool.
func TestStreamClientCancel(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 2, NoCache: true})
	s.testHookSolving = func(ctx context.Context) { <-ctx.Done() }

	req := SolveRequest{Requests: make([]GraphRequest, 32)}
	for i := range req.Requests {
		req.Requests[i] = GraphRequest{Text: "p mcm 2 2\na 1 2 3\na 2 1 5\n"}
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/solve?stream=1", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := ts.Client().Do(httpReq)
		if err != nil {
			return // canceled before headers: fine
		}
		var sink [256]byte
		for {
			if _, err := resp.Body.Read(sink[:]); err != nil {
				break
			}
		}
		resp.Body.Close()
	}()

	// Wait until the feeder holds the whole admission window, so the cancel
	// provably lands mid-stream.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.admit) != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("stream never saturated the window: admit=%d", len(s.admit))
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done

	for len(s.admit) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("admission tokens leaked after cancel: admit=%d", len(s.admit))
		}
		time.Sleep(time.Millisecond)
	}
	drainCtx, stop := context.WithTimeout(context.Background(), 5*time.Second)
	defer stop()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain after canceled stream: %v", err)
	}
}

// TestStreamDraining asserts streaming requests respect the drain gate like
// buffered ones.
func TestStreamDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	data := []byte(`{"requests":[{"text":"p mcm 1 1\na 1 1 1\n"}]}`)
	resp, err := ts.Client().Post(ts.URL+"/v1/solve?stream=1", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(out.String(), CodeDraining) {
		t.Fatalf("status %d: %s", resp.StatusCode, out.String())
	}
}

// TestStreamEquivalenceAgainstBuffered drives identical batches through both
// response variants and asserts the per-graph outcomes are bit-identical
// (same num/den, same cycle value) — streaming only changes framing, never
// answers. Enrolled in the CI equivalence gate by name.
func TestStreamEquivalenceAgainstBuffered(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	corpus := serveCorpus(t)
	for name, g := range corpus {
		t.Run(name, func(t *testing.T) {
			req := SolveRequest{Requests: []GraphRequest{
				{ID: "mean", Text: graphText(t, g)},
				{ID: "karp-kernel", Graph: graphJSON(t, g), Algorithm: "karp", Kernelize: true},
				{ID: "ratio", Text: graphText(t, g), Problem: "ratio"},
			}}
			status, body := post(t, ts, req)
			if status != http.StatusOK {
				t.Fatalf("buffered: %d %s", status, body)
			}
			buffered := decodeResults(t, body)
			streamed, trailer := postStream(t, ts, req)
			if trailer.Results != len(req.Requests) || trailer.Errors != 0 {
				t.Fatalf("trailer %+v", trailer)
			}
			byIndex := make(map[int]GraphResult, len(streamed))
			for _, res := range streamed {
				byIndex[res.Index] = res
			}
			for _, want := range buffered {
				got, ok := byIndex[want.Index]
				if !ok {
					t.Fatalf("stream missing index %d", want.Index)
				}
				if !want.OK || !got.OK || want.Value == nil || got.Value == nil {
					t.Fatalf("index %d: buffered %+v, streamed %+v", want.Index, want.Error, got.Error)
				}
				if got.Value.Num != want.Value.Num || got.Value.Den != want.Value.Den {
					t.Fatalf("index %d: streamed %d/%d, buffered %d/%d",
						want.Index, got.Value.Num, got.Value.Den, want.Value.Num, want.Value.Den)
				}
				checkCycleValue(t, g, got, want.ID == "ratio")
			}
		})
	}
}
