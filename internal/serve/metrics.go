package serve

import (
	"sync/atomic"

	"repro/internal/obs"
)

// serverMetrics counts request-level traffic, one layer above the solver
// metrics obs.Metrics aggregates. All fields are atomics so the handler
// updates them without locking; Snapshot renders the whole set for the
// /debug/vars handler.
type serverMetrics struct {
	requests     atomic.Int64 // POST /v1/solve requests accepted for decoding
	ok           atomic.Int64 // requests answered 200
	badRequest   atomic.Int64 // 400-class rejections (malformed, batch too large)
	bodyTooLarge atomic.Int64 // 413 rejections
	queueFull    atomic.Int64 // 429 rejections (backpressure)
	draining     atomic.Int64 // 503 rejections during shutdown
	graphs       atomic.Int64 // graphs admitted to the solve pool
	graphOK      atomic.Int64 // graphs answered with a value
	graphErrors  atomic.Int64 // graphs answered with a typed error
	deadlines    atomic.Int64 // graphs that died on deadline_exceeded

	// /v1/session traffic; rendered on the /debug/vars "sessions" branch
	// (Server.sessionVars) next to the live-session gauge.
	sessionsCreated    atomic.Int64 // sessions created
	sessionsClosed     atomic.Int64 // sessions removed via DELETE
	sessionsExpired    atomic.Int64 // sessions lazily expired past SessionTTL
	sessionsRejected   atomic.Int64 // creations refused at MaxSessions (429)
	sessionStreams     atomic.Int64 // delta streams opened
	sessionDeltas      atomic.Int64 // deltas applied (graph actually edited)
	sessionDeltaErrors atomic.Int64 // delta lines answered with a typed error

	requestDuration obs.Histogram // whole-batch wall clock
	solveDuration   obs.Histogram // per-graph wall clock (queue + solve)
}

// Snapshot renders the counters as a JSON-marshalable tree.
func (m *serverMetrics) Snapshot() map[string]any {
	return map[string]any{
		"requests":          m.requests.Load(),
		"requests_ok":       m.ok.Load(),
		"rejected_bad":      m.badRequest.Load(),
		"rejected_too_big":  m.bodyTooLarge.Load(),
		"rejected_queue":    m.queueFull.Load(),
		"rejected_draining": m.draining.Load(),
		"graphs":            m.graphs.Load(),
		"graphs_ok":         m.graphOK.Load(),
		"graph_errors":      m.graphErrors.Load(),
		"deadlines":         m.deadlines.Load(),
		"request_duration":  m.requestDuration.Snapshot(),
		"solve_duration":    m.solveDuration.Snapshot(),
	}
}
