package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// The stateful session API: a server-side incremental dynamic-graph engine
// (core.DynSession) addressed by session ID, so a client editing one graph
// pays per-delta incremental cost instead of re-shipping and re-solving the
// whole graph on every edit.
//
//	POST   /v1/session              create a session from a graph; answers the
//	                                initial solve
//	POST   /v1/session/{id}/deltas  full-duplex NDJSON delta stream: one
//	                                DeltaRequest per line in, one DeltaResult
//	                                per line out, SessionTrailer last
//	GET    /v1/session/{id}         session stats
//	DELETE /v1/session/{id}         close the session
//
// Sessions deliberately bypass the content-addressed result cache in both
// directions: a delta stream mutates one private graph whose intermediate
// states are exactly the content a fingerprint cache must never serve for a
// different request, and conversely a cached entry keyed on an earlier
// fingerprint must never answer a post-delta query. Session solves go
// straight to the engine; /v1/solve caching is unaffected (see
// TestSessionDoesNotTouchResultCache).
//
// Drain semantics (shared with /v1/solve, see Server.Drain): initiating a
// drain closes drainCh, which every open delta stream selects on. The stream
// stops consuming deltas, emits its terminal SessionTrailer with
// "draining": true, and returns — so SIGTERM never wedges on a long-lived
// connection and the client always sees a clean end-of-stream frame.
//
// docs/SERVING.md documents the wire schema and the error-code table.

// SessionCreateRequest is the body of POST /v1/session. Exactly one of Text
// and Graph must be set; the session always solves the minimum cycle mean
// with Howard's algorithm (warm-started incrementally across deltas).
type SessionCreateRequest struct {
	// Text is the graph in the line format of docs/FORMATS.md.
	Text string `json:"text,omitempty"`
	// Graph is the inline JSON arc-list form; see GraphRequest.Graph.
	Graph json.RawMessage `json:"graph,omitempty"`
	// Certify attaches an exact optimality proof to every answer the
	// session produces (initial solve and every delta).
	Certify bool `json:"certify,omitempty"`
	// DeadlineMillis is the solve budget for the initial solve; 0 means
	// Config.DefaultTimeout. Capped by Config.MaxTimeout.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// SessionCreateResponse is the 200 body of POST /v1/session. The session is
// created even when the initial solve fails with a typed per-graph error
// (e.g. an acyclic seed graph): deltas can repair the graph, so the error
// lands in Result.Error instead of failing creation.
type SessionCreateResponse struct {
	SessionID string `json:"session_id"`
	Nodes     int    `json:"nodes"`
	Arcs      int    `json:"arcs"`
	// Result is the initial solve, shaped exactly like a /v1/solve result.
	// Cycle references arc IDs in the submitted order (these stay stable
	// across deltas: deleted IDs are never reused, inserted arcs get fresh
	// ones).
	Result GraphResult `json:"result"`
}

// DeltaRequest is one line of the NDJSON delta stream.
type DeltaRequest struct {
	// Seq is an opaque client tag echoed on the matching DeltaResult;
	// results are answered in order, so it is a convenience, not a need.
	Seq int64 `json:"seq,omitempty"`
	// Op is one of "insert-arc", "delete-arc", "set-weight", "set-transit",
	// "add-node".
	Op string `json:"op"`
	// Arc is the target arc ID for delete-arc / set-weight / set-transit.
	Arc int64 `json:"arc,omitempty"`
	// From and To are the insert-arc endpoints.
	From int64 `json:"from,omitempty"`
	To   int64 `json:"to,omitempty"`
	// Weight is read by insert-arc and set-weight.
	Weight int64 `json:"weight,omitempty"`
	// Transit is read by insert-arc (0 defaults to 1) and set-transit.
	Transit int64 `json:"transit,omitempty"`
	// DeadlineMillis bounds this delta's re-solve; 0 means
	// Config.DefaultTimeout. Capped by Config.MaxTimeout.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// toCore validates the wire delta and converts it to the engine form.
func (dr *DeltaRequest) toCore() (core.Delta, *ErrorBody) {
	switch dr.Op {
	case "insert-arc":
		transit := dr.Transit
		if transit == 0 {
			transit = 1
		}
		return core.Delta{Op: core.DeltaInsertArc,
			From: graph.NodeID(dr.From), To: graph.NodeID(dr.To),
			Weight: dr.Weight, Transit: transit}, nil
	case "delete-arc":
		return core.Delta{Op: core.DeltaDeleteArc, Arc: graph.ArcID(dr.Arc)}, nil
	case "set-weight":
		return core.Delta{Op: core.DeltaSetWeight, Arc: graph.ArcID(dr.Arc), Weight: dr.Weight}, nil
	case "set-transit":
		return core.Delta{Op: core.DeltaSetTransit, Arc: graph.ArcID(dr.Arc), Transit: dr.Transit}, nil
	case "add-node":
		return core.Delta{Op: core.DeltaAddNode}, nil
	default:
		return core.Delta{}, &ErrorBody{Code: CodeBadDelta,
			Message: fmt.Sprintf("unknown op %q (want insert-arc, delete-arc, set-weight, set-transit, or add-node)", dr.Op)}
	}
}

// DeltaResult is one line of the NDJSON delta stream response.
type DeltaResult struct {
	// Seq echoes the request line's tag.
	Seq int64 `json:"seq,omitempty"`
	// Op echoes the operation as applied.
	Op string `json:"op,omitempty"`
	// OK means the delta applied and the re-solve produced a value.
	OK bool `json:"ok"`
	// Applied means the graph edit itself took effect, even when the
	// re-solve then failed (e.g. the delta made the graph acyclic). A
	// rejected delta (Error.Code "bad_delta") leaves the graph unchanged.
	Applied bool `json:"applied"`
	// ID is the fresh arc ID assigned by insert-arc, or the fresh node ID
	// assigned by add-node; -1 otherwise.
	ID int64 `json:"id"`
	// Value is the updated λ* when OK.
	Value *RatValue `json:"value,omitempty"`
	// Cycle is a critical cycle in stable original arc IDs.
	Cycle []graph.ArcID `json:"cycle,omitempty"`
	// Certified reports a verified exact optimality proof (sessions created
	// with "certify": true).
	Certified bool `json:"certified,omitempty"`
	// ElapsedMillis is the server-side apply+re-solve wall clock.
	ElapsedMillis float64 `json:"elapsed_ms"`
	// Error is set instead of Value when OK is false.
	Error *ErrorBody `json:"error,omitempty"`
}

// SessionTrailer is the final line of a delta stream: emitted exactly once,
// whether the stream ended because the client closed its write side or
// because the server began draining.
type SessionTrailer struct {
	// Done is always true; no DeltaResult line carries a "done" key.
	Done bool `json:"done"`
	// Draining means the server is shutting down and stopped consuming the
	// stream; deltas already answered were applied, unread ones were not.
	Draining bool `json:"draining,omitempty"`
	// Results counts the DeltaResult lines emitted before the trailer; OK
	// and Errors partition them.
	Results int `json:"results"`
	OK      int `json:"ok"`
	Errors  int `json:"errors"`
	// ElapsedMillis is the whole stream's server-side wall clock.
	ElapsedMillis float64 `json:"elapsed_ms"`
}

// SessionInfo is the body of GET /v1/session/{id}.
type SessionInfo struct {
	SessionID string `json:"session_id"`
	Nodes     int    `json:"nodes"`
	Arcs      int    `json:"arcs"`
	Certify   bool   `json:"certify,omitempty"`
	CreatedAt string `json:"created_at"`
	LastUsed  string `json:"last_used"`
	// Deltas and DeltaErrors count stream lines answered; OpenStreams is
	// the number of delta streams currently attached.
	Deltas      int64 `json:"deltas"`
	DeltaErrors int64 `json:"delta_errors"`
	OpenStreams int32 `json:"open_streams"`
	// Engine exposes the incremental engine's own counters (component
	// re-solves, warm hits, merges, splits, ...).
	Engine core.DynStats `json:"engine"`
}

// sessionEntry is one live session in the registry.
type sessionEntry struct {
	id      string
	certify bool
	created time.Time

	// mu serializes Update calls from concurrent delta streams on the same
	// session; the engine has its own lock, but entry-level serialization
	// keeps the apply→answer pairing of each stream line atomic.
	mu sync.Mutex
	ds *core.DynSession

	lastUsed    atomic.Int64 // unix nanos
	deltas      atomic.Int64
	deltaErrors atomic.Int64
	streams     atomic.Int32
}

func (e *sessionEntry) touch(now time.Time) { e.lastUsed.Store(now.UnixNano()) }

// newSessionID mints a registry-unique ID.
func (s *Server) newSessionID() string {
	return fmt.Sprintf("s%08x", s.sessionSeq.Add(1))
}

// expireSessionsLocked removes idle sessions past Config.SessionTTL; called
// with sessMu held, lazily on create and lookup (no background reaper, so an
// idle Server stays goroutine-free). Sessions with an attached stream never
// expire: the stream keeps touching them.
func (s *Server) expireSessionsLocked(now time.Time) {
	ttl := s.cfg.SessionTTL
	for id, e := range s.sessions {
		if e.streams.Load() > 0 {
			continue
		}
		if now.Sub(time.Unix(0, e.lastUsed.Load())) > ttl {
			delete(s.sessions, id)
			s.metrics.sessionsExpired.Add(1)
		}
	}
}

// lookupSession finds a live session and refreshes its idle clock.
func (s *Server) lookupSession(id string) *sessionEntry {
	now := time.Now()
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	s.expireSessionsLocked(now)
	e := s.sessions[id]
	if e != nil {
		e.touch(now)
	}
	return e
}

// sessionVars renders the /debug/vars "sessions" branch.
func (s *Server) sessionVars() map[string]any {
	s.sessMu.Lock()
	live := len(s.sessions)
	s.sessMu.Unlock()
	return map[string]any{
		"live":         live,
		"created":      s.metrics.sessionsCreated.Load(),
		"closed":       s.metrics.sessionsClosed.Load(),
		"expired":      s.metrics.sessionsExpired.Load(),
		"rejected":     s.metrics.sessionsRejected.Load(),
		"streams":      s.metrics.sessionStreams.Load(),
		"deltas":       s.metrics.sessionDeltas.Load(),
		"delta_errors": s.metrics.sessionDeltaErrors.Load(),
	}
}

// sessionBudget resolves a per-solve budget from a wire deadline.
func (s *Server) sessionBudget(ms int64) time.Duration {
	if ms <= 0 {
		return s.cfg.DefaultTimeout
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// acquireWorker takes one execution slot, honoring the budget while queued.
func (s *Server) acquireWorker(ctx context.Context) error {
	select {
	case s.workers <- struct{}{}:
		// The select picks at random when both are ready; never start work
		// on a dead budget.
		if err := ctx.Err(); err != nil {
			<-s.workers
			return fmt.Errorf("solve budget expired while queued: %w", err)
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("solve budget expired while queued: %w", ctx.Err())
	}
}

// handleSessionCreate is POST /v1/session.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, CodeMethodNotAllowed, "use POST")
		return
	}
	if !s.enter() {
		s.metrics.draining.Add(1)
		writeError(w, CodeDraining, "server is draining")
		return
	}
	defer s.inflight.Done()

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req SessionCreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.metrics.bodyTooLarge.Add(1)
			writeError(w, CodeBodyTooLarge, fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		s.metrics.badRequest.Add(1)
		writeError(w, CodeBadRequest, "malformed JSON body: "+err.Error())
		return
	}
	g, errBody := decodeGraph(&GraphRequest{Text: req.Text, Graph: req.Graph})
	if errBody != nil {
		s.metrics.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: *errBody})
		return
	}

	opt := s.baseOpt
	opt.Certify = req.Certify
	now := time.Now()
	e := &sessionEntry{certify: req.Certify, created: now, ds: core.NewDynSession(g, opt)}
	e.touch(now)

	s.sessMu.Lock()
	s.expireSessionsLocked(now)
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.sessMu.Unlock()
		s.metrics.sessionsRejected.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeError(w, CodeSessionLimit,
			fmt.Sprintf("session limit of %d reached; close or let sessions expire", s.cfg.MaxSessions))
		return
	}
	e.id = s.newSessionID()
	s.sessions[e.id] = e
	s.sessMu.Unlock()
	s.metrics.sessionsCreated.Add(1)

	// Initial solve: same budget and worker-slot discipline as /v1/solve,
	// but never through the result cache — see the package comment above.
	var res GraphResult
	res.Algorithm = "howard"
	start := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), s.sessionBudget(req.DeadlineMillis))
	if err := s.acquireWorker(ctx); err != nil {
		res.Error = solveErrorBody(err)
	} else {
		r, err := e.ds.SolveContext(ctx)
		<-s.workers
		if err != nil {
			res.Error = solveErrorBody(err)
		} else {
			fillOutcome(&res, meanOutcome(r), nil)
		}
	}
	cancel()
	res.ElapsedMillis = float64(time.Since(start)) / 1e6

	nodes, arcs := e.ds.Dims()
	writeJSON(w, http.StatusOK, SessionCreateResponse{
		SessionID: e.id,
		Nodes:     nodes,
		Arcs:      arcs,
		Result:    res,
	})
}

// retryAfterSeconds renders a Retry-After header value, rounding up.
func retryAfterSeconds(d time.Duration) string {
	return fmt.Sprintf("%d", int((d+time.Second-1)/time.Second))
}

// handleSessionByID is GET or DELETE /v1/session/{id}.
func (s *Server) handleSessionByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch r.Method {
	case http.MethodGet:
		e := s.lookupSession(id)
		if e == nil {
			writeError(w, CodeUnknownSession, fmt.Sprintf("no session %q", id))
			return
		}
		nodes, arcs := e.ds.Dims()
		writeJSON(w, http.StatusOK, SessionInfo{
			SessionID:   e.id,
			Nodes:       nodes,
			Arcs:        arcs,
			Certify:     e.certify,
			CreatedAt:   e.created.UTC().Format(time.RFC3339Nano),
			LastUsed:    time.Unix(0, e.lastUsed.Load()).UTC().Format(time.RFC3339Nano),
			Deltas:      e.deltas.Load(),
			DeltaErrors: e.deltaErrors.Load(),
			OpenStreams: e.streams.Load(),
			Engine:      e.ds.Stats(),
		})
	case http.MethodDelete:
		s.sessMu.Lock()
		_, ok := s.sessions[id]
		delete(s.sessions, id)
		s.sessMu.Unlock()
		if !ok {
			writeError(w, CodeUnknownSession, fmt.Sprintf("no session %q", id))
			return
		}
		s.metrics.sessionsClosed.Add(1)
		writeJSON(w, http.StatusOK, map[string]any{"session_id": id, "closed": true})
	default:
		writeError(w, CodeMethodNotAllowed, "use GET or DELETE")
	}
}

// handleSessionDeltas is POST /v1/session/{id}/deltas: the full-duplex
// NDJSON delta stream. Each request line applies one delta and answers one
// DeltaResult line immediately (EnableFullDuplex lets the handler interleave
// body reads with response writes on the same connection), so a client can
// hold the stream open indefinitely and pay per-delta incremental latency.
func (s *Server) handleSessionDeltas(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost && r.Method != http.MethodPut {
		writeError(w, CodeMethodNotAllowed, "use POST")
		return
	}
	e := s.lookupSession(r.PathValue("id"))
	if e == nil {
		writeError(w, CodeUnknownSession, fmt.Sprintf("no session %q", r.PathValue("id")))
		return
	}
	if !s.enter() {
		s.metrics.draining.Add(1)
		writeError(w, CodeDraining, "server is draining")
		return
	}
	defer s.inflight.Done()
	e.streams.Add(1)
	defer e.streams.Add(-1)
	defer e.touch(time.Now())
	s.metrics.sessionStreams.Add(1)

	ctx := r.Context()
	rc := http.NewResponseController(w)
	// Full duplex is what makes the stream a conversation instead of a
	// request/response pair; unsupported transports (HTTP/2 already
	// interleaves) just return an error we can ignore.
	_ = rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(http.StatusOK)
	_ = rc.Flush()

	// Reader: one goroutine turns the body into delta lines. Lines are
	// bounded individually (a delta is small); the stream as a whole is
	// deliberately unbounded — it is long-lived by design.
	lines := make(chan []byte)
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 4096), maxDeltaLineBytes)
		for sc.Scan() {
			line := append([]byte(nil), sc.Bytes()...)
			select {
			case lines <- line:
			case <-done:
				return
			}
		}
	}()

	enc := json.NewEncoder(w)
	start := time.Now()
	var emitted, okCount, errCount int
	emit := func(dr DeltaResult) bool {
		emitted++
		if dr.Error != nil {
			errCount++
		} else {
			okCount++
		}
		if err := enc.Encode(dr); err != nil {
			return false
		}
		_ = rc.Flush()
		return true
	}
	trailer := func(draining bool) {
		_ = enc.Encode(SessionTrailer{
			Done:          true,
			Draining:      draining,
			Results:       emitted,
			OK:            okCount,
			Errors:        errCount,
			ElapsedMillis: float64(time.Since(start)) / 1e6,
		})
		_ = rc.Flush()
		s.metrics.ok.Add(1)
	}

	for {
		select {
		case line, open := <-lines:
			if !open {
				// Client closed its write side: the normal end of stream.
				trailer(false)
				return
			}
			if len(line) == 0 {
				continue // blank lines are keep-alive noise, not deltas
			}
			var dr DeltaRequest
			if err := json.Unmarshal(line, &dr); err != nil {
				// A malformed line means the client and server disagree on
				// framing; per-delta recovery is not safe, end the stream.
				emit(DeltaResult{ID: -1, Error: &ErrorBody{
					Code:    CodeBadRequest,
					Message: "malformed delta line: " + err.Error(),
				}})
				trailer(false)
				return
			}
			if !emit(s.applyDelta(ctx, e, &dr)) {
				return // connection gone; ctx unwinds everything else
			}
		case <-ctx.Done():
			return // client disconnected; nothing left to write to
		case <-s.drainCh:
			// Shutdown: stop consuming, answer the terminal frame so the
			// client sees a clean end instead of a reset, and let Drain's
			// WaitGroup proceed.
			trailer(true)
			return
		}
	}
}

// maxDeltaLineBytes bounds one NDJSON delta line.
const maxDeltaLineBytes = 1 << 16

// applyDelta converts, applies, and re-solves one delta under the session's
// entry lock, occupying a worker execution slot for the solve — session
// deltas compete with /v1/solve work for the same capacity.
func (s *Server) applyDelta(ctx context.Context, e *sessionEntry, dr *DeltaRequest) DeltaResult {
	out := DeltaResult{Seq: dr.Seq, Op: dr.Op, ID: -1}
	start := time.Now()
	defer func() {
		out.ElapsedMillis = float64(time.Since(start)) / 1e6
		e.touch(time.Now())
		if out.Error != nil {
			e.deltaErrors.Add(1)
			s.metrics.sessionDeltaErrors.Add(1)
		}
	}()

	dl, errBody := dr.toCore()
	if errBody != nil {
		out.Error = errBody
		return out
	}
	ctx, cancel := context.WithTimeout(ctx, s.sessionBudget(dr.DeadlineMillis))
	defer cancel()
	if err := s.acquireWorker(ctx); err != nil {
		out.Error = solveErrorBody(err)
		return out
	}
	defer func() { <-s.workers }()

	e.mu.Lock()
	ids, res, err := e.ds.Update(ctx, []core.Delta{dl})
	e.mu.Unlock()

	if errors.Is(err, core.ErrBadDelta) {
		out.Error = &ErrorBody{Code: CodeBadDelta, Message: err.Error()}
		return out
	}
	// Past the bad-delta gate the edit itself took effect, even when the
	// re-solve failed (acyclic graph, numeric range, expired budget): the
	// engine holds the delta and re-solves on the next request.
	out.Applied = true
	e.deltas.Add(1)
	s.metrics.sessionDeltas.Add(1)
	if len(ids) > 0 {
		out.ID = ids[0]
	}
	if err != nil {
		out.Error = solveErrorBody(err)
		return out
	}
	out.OK = true
	out.Value = ratValue(res.Mean)
	out.Cycle = res.Cycle
	out.Certified = res.Certificate != nil
	return out
}
