package serve

import (
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ratio"
	"repro/internal/testutil"
)

// serveCorpus returns the serving slice of the shared equivalence corpus
// (internal/testutil), under the historical name both HTTP equivalence
// tests key their subtests on.
func serveCorpus(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return testutil.ServeCorpus(t)
}

// TestServeEquivalenceCorpus drives the corpus through the HTTP boundary
// (mean via the warm-started session path, mean via a direct driver, and
// ratio) and asserts each answer is bit-identical (same num/den) to the
// direct in-process solver call. This is the serving extension of the
// kernel equivalence gate: the name carries "Equivalence" so the CI
// kernel-gate job (-run Equivalence) includes it.
func TestServeEquivalenceCorpus(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	corpus := serveCorpus(t)

	howard, err := core.ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	karp, err := core.ByName("karp")
	if err != nil {
		t.Fatal(err)
	}
	howardRatio, err := ratio.ByName("howard")
	if err != nil {
		t.Fatal(err)
	}

	for name, g := range corpus {
		t.Run(name, func(t *testing.T) {
			wantMean, err := core.MinimumCycleMean(g, howard, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			wantKarp, err := core.MinimumCycleMean(g, karp, core.Options{Kernelize: true})
			if err != nil {
				t.Fatal(err)
			}
			if !wantKarp.Mean.Equal(wantMean.Mean) {
				t.Fatalf("direct solvers disagree: howard %v, karp+kernel %v", wantMean.Mean, wantKarp.Mean)
			}
			wantRatio, err := ratio.MinimumCycleRatio(g, howardRatio, core.Options{})
			if err != nil {
				t.Fatal(err)
			}

			status, body := post(t, ts, SolveRequest{Requests: []GraphRequest{
				{ID: "session", Text: graphText(t, g)},
				{ID: "karp-kernel", Graph: graphJSON(t, g), Algorithm: "karp", Kernelize: true},
				{ID: "madani", Graph: graphJSON(t, g), Algorithm: "madani"},
				{ID: "ratio", Text: graphText(t, g), Problem: "ratio"},
				{ID: "ratio-sb", Graph: graphJSON(t, g), Problem: "ratio", Algorithm: "sternbrocot"},
				{ID: "ratio-bhk", Text: graphText(t, g), Problem: "ratio", Algorithm: "bhk"},
			}})
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, body)
			}
			for _, res := range decodeResults(t, body) {
				if !res.OK || res.Error != nil || res.Value == nil {
					t.Fatalf("%s: %+v", res.ID, res.Error)
				}
				isRatio := res.ID == "ratio" || res.ID == "ratio-sb" || res.ID == "ratio-bhk"
				want := wantMean.Mean
				if isRatio {
					want = wantRatio.Ratio
				}
				if res.Value.Num != want.Num() || res.Value.Den != want.Den() {
					t.Fatalf("%s: served %d/%d, direct %d/%d", res.ID, res.Value.Num, res.Value.Den, want.Num(), want.Den())
				}
				checkCycleValue(t, g, res, isRatio)
			}
		})
	}
}
