package serve

import (
	"fmt"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ratio"
)

// serveCorpus builds the serving slice of the equivalence corpus: the
// Torus, MultiSCC, and Chain shapes of the DAC'99 workloads, plus
// transit-perturbed variants so the ratio path is distinct from the mean
// path. Sizes are kept small enough that the whole corpus round-trips over
// HTTP in a few seconds even under -race.
func serveCorpus(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	corpus := make(map[string]*graph.Graph)
	for seed := uint64(0); seed < 3; seed++ {
		corpus[fmt.Sprintf("torus-%d", seed)] = gen.Torus(5, 6, -100, 100, seed)

		ms, err := gen.MultiSCC(4, 8, 20, seed)
		if err != nil {
			t.Fatal(err)
		}
		corpus[fmt.Sprintf("multiscc-%d", seed)] = ms

		ch, err := gen.Chain(gen.ChainConfig{
			CoreN: 6, Chains: 4, ChainLen: 10,
			MinWeight: -50, MaxWeight: 50, SelfLoops: 2, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		corpus[fmt.Sprintf("chain-%d", seed)] = ch
	}
	// Transit-perturbed variants: transit 1..4 by arc index makes the
	// cost-to-time ratio genuinely different from the cycle mean. Collect
	// the base names first — inserting while ranging would double-perturb.
	base := make(map[string]*graph.Graph, len(corpus))
	for name, g := range corpus {
		base[name] = g
	}
	for name, g := range base {
		arcs := append([]graph.Arc(nil), g.Arcs()...)
		for i := range arcs {
			arcs[i].Transit = 1 + int64(i%4)
		}
		corpus["transit-"+name] = graph.FromArcs(g.NumNodes(), arcs)
	}
	return corpus
}

// TestServeEquivalenceCorpus drives the corpus through the HTTP boundary
// (mean via the warm-started session path, mean via a direct driver, and
// ratio) and asserts each answer is bit-identical (same num/den) to the
// direct in-process solver call. This is the serving extension of the
// kernel equivalence gate: the name carries "Equivalence" so the CI
// kernel-gate job (-run Equivalence) includes it.
func TestServeEquivalenceCorpus(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	corpus := serveCorpus(t)

	howard, err := core.ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	karp, err := core.ByName("karp")
	if err != nil {
		t.Fatal(err)
	}
	howardRatio, err := ratio.ByName("howard")
	if err != nil {
		t.Fatal(err)
	}

	for name, g := range corpus {
		t.Run(name, func(t *testing.T) {
			wantMean, err := core.MinimumCycleMean(g, howard, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			wantKarp, err := core.MinimumCycleMean(g, karp, core.Options{Kernelize: true})
			if err != nil {
				t.Fatal(err)
			}
			if !wantKarp.Mean.Equal(wantMean.Mean) {
				t.Fatalf("direct solvers disagree: howard %v, karp+kernel %v", wantMean.Mean, wantKarp.Mean)
			}
			wantRatio, err := ratio.MinimumCycleRatio(g, howardRatio, core.Options{})
			if err != nil {
				t.Fatal(err)
			}

			status, body := post(t, ts, SolveRequest{Requests: []GraphRequest{
				{ID: "session", Text: graphText(t, g)},
				{ID: "karp-kernel", Graph: graphJSON(t, g), Algorithm: "karp", Kernelize: true},
				{ID: "ratio", Text: graphText(t, g), Problem: "ratio"},
				{ID: "ratio-sb", Graph: graphJSON(t, g), Problem: "ratio", Algorithm: "sternbrocot"},
			}})
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, body)
			}
			for _, res := range decodeResults(t, body) {
				if !res.OK || res.Error != nil || res.Value == nil {
					t.Fatalf("%s: %+v", res.ID, res.Error)
				}
				isRatio := res.ID == "ratio" || res.ID == "ratio-sb"
				want := wantMean.Mean
				if isRatio {
					want = wantRatio.Ratio
				}
				if res.Value.Num != want.Num() || res.Value.Den != want.Den() {
					t.Fatalf("%s: served %d/%d, direct %d/%d", res.ID, res.Value.Num, res.Value.Den, want.Num(), want.Den())
				}
				checkCycleValue(t, g, res, isRatio)
			}
		})
	}
}
