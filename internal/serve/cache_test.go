package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// Serve-level tests of the content-addressed result cache: option keying,
// cancellation hygiene, and concurrent exactly-once semantics, all through
// the HTTP boundary. The cache's own unit tests live in internal/servecache.

// TestCacheRepeatRequestHits pins the basic flow: the first request solves
// (cached=false), repeats of the same graph under the same options — in
// either encoding — are served from the cache (cached=true) with an
// identical answer, and the counters show up in /debug/vars.
func TestCacheRepeatRequestHits(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	g, err := gen.Sprand(gen.SprandConfig{N: 10, M: 30, MinWeight: -40, MaxWeight: 40, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}

	solveOnce := func(gr GraphRequest) GraphResult {
		status, body := post(t, ts, SolveRequest{Requests: []GraphRequest{gr}})
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		return decodeResults(t, body)[0]
	}

	first := solveOnce(GraphRequest{Text: graphText(t, g)})
	if !first.OK || first.Cached {
		t.Fatalf("first request: ok=%v cached=%v, want solved fresh", first.OK, first.Cached)
	}
	// Same graph as text again, then as JSON: both must hit — the
	// fingerprint is content-addressed, not encoding-addressed.
	for i, gr := range []GraphRequest{
		{Text: graphText(t, g)},
		{Graph: graphJSON(t, g)},
	} {
		res := solveOnce(gr)
		if !res.OK || !res.Cached {
			t.Fatalf("repeat %d: ok=%v cached=%v, want cache hit", i, res.OK, res.Cached)
		}
		if res.Value.Num != first.Value.Num || res.Value.Den != first.Value.Den {
			t.Fatalf("repeat %d: value %+v, first %+v", i, res.Value, first.Value)
		}
		if fmt.Sprint(res.Cycle) != fmt.Sprint(first.Cycle) {
			t.Fatalf("repeat %d: cycle %v, first %v", i, res.Cycle, first.Cycle)
		}
	}

	stats, enabled := s.CacheStats()
	if !enabled || stats.Hits != 2 || stats.Misses != 1 || stats.Entries != 1 {
		t.Fatalf("cache stats %+v (enabled=%v), want 2 hits / 1 miss / 1 entry", stats, enabled)
	}

	// The counters must be visible on /debug/vars under both the cache
	// branch and the solver metrics (serve_cache_*).
	resp, err := ts.Client().Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Cache *struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
		Solver map[string]any `json:"solver"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if vars.Cache == nil || vars.Cache.Hits != 2 || vars.Cache.Misses != 1 {
		t.Fatalf("/debug/vars cache branch %+v", vars.Cache)
	}
	if got := vars.Solver["serve_cache_hits"].(float64); got != 2 {
		t.Fatalf("solver serve_cache_hits %v, want 2", got)
	}
}

// TestCacheOptionNearMisses is the serve half of satellite 1: every
// solve-relevant option flip must key a distinct entry. In particular a
// certified request must never be answered by a cached uncertified result —
// the response's certified flag is asserted, not just the value.
func TestCacheOptionNearMisses(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	g, err := gen.Sprand(gen.SprandConfig{N: 8, M: 24, MinWeight: -30, MaxWeight: 30, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	arcs := append([]graph.Arc(nil), g.Arcs()...)
	for i := range arcs {
		arcs[i].Transit = 1 + int64(i%3)
	}
	g = graph.FromArcs(g.NumNodes(), arcs)
	text := graphText(t, g)

	variants := []GraphRequest{
		{ID: "base", Text: text},
		{ID: "certify", Text: text, Certify: true},
		{ID: "kernelize", Text: text, Kernelize: true},
		{ID: "certify-kernelize", Text: text, Certify: true, Kernelize: true},
		{ID: "maximize", Text: text, Maximize: true},
		{ID: "karp", Text: text, Algorithm: "karp"},
		{ID: "ratio", Text: text, Problem: "ratio"},
		{ID: "ratio-certify", Text: text, Problem: "ratio", Certify: true},
		{ID: "approx", Text: text, Algorithm: "approx", ApproxEpsilon: 0.05},
		{ID: "approx-tight", Text: text, Algorithm: "approx", ApproxEpsilon: 0.01},
		{ID: "approx-ap", Text: text, Algorithm: "approx", ApproxEpsilon: 0.05, ApproxMode: "ap"},
		{ID: "approx-sharpen", Text: text, Algorithm: "approx", ApproxEpsilon: 0.05, ApproxSharpen: true},
	}
	run := func(gr GraphRequest) GraphResult {
		status, body := post(t, ts, SolveRequest{Requests: []GraphRequest{gr}})
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", gr.ID, status, body)
		}
		res := decodeResults(t, body)[0]
		if !res.OK {
			t.Fatalf("%s: %+v", gr.ID, res.Error)
		}
		return res
	}

	// First pass: every variant is a distinct key, so every one solves.
	for _, gr := range variants {
		if res := run(gr); res.Cached {
			t.Fatalf("%s: served from cache on first sight — option missing from the key", gr.ID)
		}
	}
	stats, _ := s.CacheStats()
	if stats.Misses != int64(len(variants)) || stats.Hits != 0 {
		t.Fatalf("after first pass: %+v, want %d misses / 0 hits", stats, len(variants))
	}

	// Second pass: every variant hits its own entry, and the certification
	// flag survives the round-trip — a certify=true repeat must come back
	// certified (from the certified entry), and certify=false must not.
	for _, gr := range variants {
		res := run(gr)
		if !res.Cached {
			t.Fatalf("%s: repeat did not hit", gr.ID)
		}
		if res.Certified != gr.Certify {
			t.Fatalf("%s: certified=%v for certify=%v — cache crossed certification boundaries", gr.ID, res.Certified, gr.Certify)
		}
	}
	stats, _ = s.CacheStats()
	if stats.Hits != int64(len(variants)) {
		t.Fatalf("after second pass: %+v, want %d hits", stats, len(variants))
	}

	// The default approx mode spelling and the explicit "chkl" canonicalize
	// to one key: spelling the mode out must hit the default-mode entry.
	res := run(GraphRequest{ID: "approx-canonical", Text: text, Algorithm: "approx", ApproxEpsilon: 0.05, ApproxMode: "chkl"})
	if !res.Cached {
		t.Fatalf("explicit chkl mode missed the default-mode entry — mode not canonicalized in the key")
	}
}

// TestCacheDeadlineNotPoisoned is the serve half of satellite 2: a solve
// that dies on its deadline must not leave anything behind — the next
// request for the same key re-solves and succeeds, then caches normally.
func TestCacheDeadlineNotPoisoned(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	var calls atomic.Int32
	s.testHookSolving = func(ctx context.Context) {
		if calls.Add(1) == 1 {
			<-ctx.Done() // first solve outlives its budget
		}
	}
	gr := GraphRequest{Text: "p mcm 2 2\na 1 2 3\na 2 1 5\n"}

	status, body := post(t, ts, SolveRequest{
		DeadlineMillis: 50,
		Requests:       []GraphRequest{gr},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	res := decodeResults(t, body)[0]
	if res.OK || res.Error == nil || res.Error.Code != CodeDeadlineExceeded {
		t.Fatalf("doomed solve: %+v", res)
	}
	if stats, _ := s.CacheStats(); stats.Entries != 0 {
		t.Fatalf("canceled solve was stored: %+v", stats)
	}

	// Same key again: must re-solve (not hit a poisoned entry) and succeed.
	status, body = post(t, ts, SolveRequest{Requests: []GraphRequest{gr}})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	res = decodeResults(t, body)[0]
	if !res.OK || res.Cached || res.Value.Num != 4 || res.Value.Den != 1 {
		t.Fatalf("re-solve after deadline: %+v", res)
	}

	// And now it is cached like any other success.
	status, body = post(t, ts, SolveRequest{Requests: []GraphRequest{gr}})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if res = decodeResults(t, body)[0]; !res.OK || !res.Cached {
		t.Fatalf("third request: %+v, want cache hit", res)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("solver entered %d times, want 2 (doomed + re-solve)", got)
	}
}

// TestCacheConcurrentExactlyOnce is satellite 3: 16 goroutines hammer the
// server with a mix of identical and distinct graphs over both the buffered
// and streaming paths. Every response must be bit-identical to the direct
// in-process solve, and the solver must have entered exactly once per
// distinct (graph, options) key — everything else was a hit or a
// singleflight merge. Runs under -race in the e2e gate.
func TestCacheConcurrentExactlyOnce(t *testing.T) {
	// The admission window (Workers+QueueDepth) comfortably exceeds the
	// worst-case concurrent demand (16 goroutines × 5 graphs), so buffered
	// batches are never 429'd and every outcome must be a correct answer.
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 128})
	var solves atomic.Int64
	s.testHookSolving = func(ctx context.Context) { solves.Add(1) }

	howard, err := core.ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	type tcase struct {
		text string
		want numeric.Rat
	}
	const distinct = 4
	cases := make([]tcase, distinct)
	for i := range cases {
		g, err := gen.Sprand(gen.SprandConfig{N: 12, M: 36, MinWeight: -60, MaxWeight: 60, Seed: uint64(70 + i)})
		if err != nil {
			t.Fatal(err)
		}
		direct, err := core.MinimumCycleMean(g, howard, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cases[i] = tcase{graphText(t, g), direct.Mean}
	}

	const goroutines = 16
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				// Every batch carries all distinct graphs plus a duplicate,
				// so identical keys collide across goroutines constantly.
				req := SolveRequest{Requests: make([]GraphRequest, 0, distinct+1)}
				for i := range cases {
					req.Requests = append(req.Requests, GraphRequest{ID: fmt.Sprintf("g%d", i), Text: cases[i].text})
				}
				req.Requests = append(req.Requests, GraphRequest{ID: "g0", Text: cases[0].text})

				var results []GraphResult
				if (w+round)%2 == 0 {
					status, body, err := tryPost(ts, req)
					if err != nil {
						errs <- err
						return
					}
					if status != http.StatusOK {
						errs <- fmt.Errorf("worker %d: status %d: %s", w, status, body)
						return
					}
					if results, err = tryDecodeResults(body); err != nil {
						errs <- err
						return
					}
				} else {
					var err error
					results, _, err = tryPostStream(ts, req)
					if err != nil {
						errs <- fmt.Errorf("worker %d stream: %w", w, err)
						return
					}
				}
				if len(results) != distinct+1 {
					errs <- fmt.Errorf("worker %d: %d results", w, len(results))
					return
				}
				for _, res := range results {
					var idx int
					if _, err := fmt.Sscanf(res.ID, "g%d", &idx); err != nil {
						errs <- fmt.Errorf("worker %d: bad id %q", w, res.ID)
						return
					}
					want := cases[idx].want
					if !res.OK || res.Value == nil || res.Value.Num != want.Num() || res.Value.Den != want.Den() {
						errs <- fmt.Errorf("worker %d %s: %+v, direct %v", w, res.ID, res.Value, want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := solves.Load(); got != distinct {
		t.Fatalf("solver entered %d times for %d distinct keys — singleflight/cache leaked solves", got, distinct)
	}
	stats, _ := s.CacheStats()
	total := int64(goroutines * rounds * (distinct + 1))
	if stats.Misses != distinct {
		t.Fatalf("cache misses %d, want %d", stats.Misses, distinct)
	}
	if stats.Hits+stats.Singleflight != total-distinct {
		t.Fatalf("hits %d + merges %d != %d non-leader requests", stats.Hits, stats.Singleflight, total-distinct)
	}
}

// TestNoCacheDisablesEverything pins the escape hatch: with NoCache the
// response never claims cached results, /debug/vars has no cache branch, and
// every repeat solves.
func TestNoCacheDisablesEverything(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, NoCache: true})
	var solves atomic.Int64
	s.testHookSolving = func(ctx context.Context) { solves.Add(1) }
	gr := GraphRequest{Text: "p mcm 2 2\na 1 2 3\na 2 1 5\n"}
	for i := 0; i < 3; i++ {
		status, body := post(t, ts, SolveRequest{Requests: []GraphRequest{gr}})
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		if res := decodeResults(t, body)[0]; !res.OK || res.Cached {
			t.Fatalf("request %d: %+v", i, res)
		}
	}
	if got := solves.Load(); got != 3 {
		t.Fatalf("solver entered %d times, want 3 with the cache off", got)
	}
	if _, enabled := s.CacheStats(); enabled {
		t.Fatal("CacheStats claims a cache exists under NoCache")
	}
}
