package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// The NDJSON streaming variant of /v1/solve. A client that sends
// "Accept: application/x-ndjson" (or ?stream=1) receives one GraphResult
// JSON object per line as each graph completes — completion order, not
// request order; Index and ID correlate — followed by exactly one
// StreamTrailer line. Results are written and flushed as they arrive, so a
// million-graph batch holds only the in-flight window in memory instead of
// the whole response slice.
//
// Admission differs from the buffered path: instead of the all-or-nothing
// grab (which answers 429 when the batch exceeds free queue slots), the
// feeder acquires one admission token per graph, blocking between entries.
// Backpressure therefore shows up as pacing — the stream slows to solver
// throughput — while goroutines stay bounded by Workers+QueueDepth exactly
// like the buffered path. Deadlines, typed per-graph errors, the result
// cache, and drain semantics are shared with the buffered path (both run
// solveOne; Drain waits for in-flight streams via the same WaitGroup).

// streamSolve answers one streaming request. Decode and batch-limit checks
// already happened in handleSolve.
func (s *Server) streamSolve(w http.ResponseWriter, r *http.Request, req *SolveRequest, start time.Time) {
	ctx := r.Context()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	results := make(chan GraphResult, s.cfg.Workers)

	// Feeder: one admission token per graph, blocking. Stops feeding the
	// moment the client goes away so a canceled stream releases its window
	// instead of spawning the rest of the batch.
	var wg sync.WaitGroup
	go func() {
		defer func() {
			wg.Wait()
			close(results)
		}()
		for i := range req.Requests {
			select {
			case s.admit <- struct{}{}:
			case <-ctx.Done():
				return
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-s.admit }()
				res := s.solveOne(ctx, req, &req.Requests[i])
				res.Index = i
				select {
				case results <- res:
				case <-ctx.Done():
				}
			}(i)
		}
	}()

	enc := json.NewEncoder(w)
	var emitted, okCount, errCount int
	for res := range results {
		if err := enc.Encode(res); err != nil {
			// The connection is gone; cancellation via ctx unwinds the
			// feeder and workers. Keep draining so close(results) frees them.
			drainResults(ctx, results)
			break
		}
		emitted++
		if res.Error != nil {
			errCount++
		} else {
			okCount++
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	elapsed := time.Since(start)
	_ = enc.Encode(StreamTrailer{
		Done:          true,
		Results:       emitted,
		OK:            okCount,
		Errors:        errCount,
		ElapsedMillis: float64(elapsed) / 1e6,
	})
	if flusher != nil {
		flusher.Flush()
	}
	s.metrics.ok.Add(1)
	s.metrics.requestDuration.Observe(elapsed)
}

// drainResults discards remaining results after a write failure so the
// producer goroutines can finish and release their tokens.
func drainResults(ctx context.Context, results <-chan GraphResult) {
	for {
		select {
		case _, ok := <-results:
			if !ok {
				return
			}
		case <-ctx.Done():
			// Producers may be blocked sending; they also select on
			// ctx.Done, so once it fires they unwind without our help.
			return
		}
	}
}
