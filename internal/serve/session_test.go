package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// deltaStream is a full-duplex NDJSON client for /v1/session/{id}/deltas:
// request lines go down a pipe while response lines are decoded as they
// arrive, exactly the interleaving a long-lived session client performs.
type deltaStream struct {
	w    *io.PipeWriter
	dec  *json.Decoder
	resp *http.Response
}

func openDeltaStream(t testing.TB, ts *httptest.Server, id string) *deltaStream {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/session/"+id+"/deltas", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("delta stream: status %d: %s", resp.StatusCode, body)
	}
	st := &deltaStream{w: pw, dec: json.NewDecoder(resp.Body), resp: resp}
	t.Cleanup(func() { st.close() })
	return st
}

func (st *deltaStream) close() {
	st.w.Close()
	st.resp.Body.Close()
}

// send writes one delta line; read decodes the next response line.
func (st *deltaStream) send(t testing.TB, dr DeltaRequest) {
	t.Helper()
	data, err := json.Marshal(dr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.w.Write(append(data, '\n')); err != nil {
		t.Fatal(err)
	}
}

func (st *deltaStream) read(t testing.TB) json.RawMessage {
	t.Helper()
	var raw json.RawMessage
	if err := st.dec.Decode(&raw); err != nil {
		t.Fatalf("reading stream line: %v", err)
	}
	return raw
}

// roundTrip sends one delta and decodes its (non-trailer) result.
func (st *deltaStream) roundTrip(t testing.TB, dr DeltaRequest) DeltaResult {
	t.Helper()
	st.send(t, dr)
	raw := st.read(t)
	var probe struct {
		Done bool `json:"done"`
	}
	if json.Unmarshal(raw, &probe) == nil && probe.Done {
		t.Fatalf("expected a DeltaResult line, got trailer: %s", raw)
	}
	var res DeltaResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("undecodable DeltaResult: %v\n%s", err, raw)
	}
	return res
}

// readTrailer decodes the terminal frame.
func (st *deltaStream) readTrailer(t testing.TB) SessionTrailer {
	t.Helper()
	raw := st.read(t)
	var tr SessionTrailer
	if err := json.Unmarshal(raw, &tr); err != nil || !tr.Done {
		t.Fatalf("expected trailer, got: %s", raw)
	}
	return tr
}

// createSession posts a session create request and decodes the response.
func createSession(t testing.TB, ts *httptest.Server, body SessionCreateRequest) SessionCreateResponse {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/session", "application/json", ioReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create session: status %d: %s", resp.StatusCode, out)
	}
	var cr SessionCreateResponse
	if err := json.Unmarshal(out, &cr); err != nil {
		t.Fatalf("undecodable create response: %v\n%s", err, out)
	}
	return cr
}

func ioReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// sessionMirror tracks the arc content a session should hold, so every
// answer can be checked against a fresh solve of the same content — through
// the HTTP boundary, not the engine's own bookkeeping.
type sessionMirror struct {
	n    int
	arcs map[int64]graph.Arc
	next int64
}

func newSessionMirror(g *graph.Graph) *sessionMirror {
	m := &sessionMirror{n: g.NumNodes(), arcs: map[int64]graph.Arc{}}
	for i, a := range g.Arcs() {
		m.arcs[int64(i)] = a
	}
	m.next = int64(g.NumArcs())
	return m
}

// apply mirrors one delta, returning the ID the server must have assigned.
func (m *sessionMirror) apply(dr DeltaRequest) int64 {
	switch dr.Op {
	case "insert-arc":
		id := m.next
		m.next++
		tr := dr.Transit
		if tr == 0 {
			tr = 1
		}
		m.arcs[id] = graph.Arc{From: graph.NodeID(dr.From), To: graph.NodeID(dr.To), Weight: dr.Weight, Transit: tr}
		return id
	case "delete-arc":
		delete(m.arcs, dr.Arc)
	case "set-weight":
		a := m.arcs[dr.Arc]
		a.Weight = dr.Weight
		m.arcs[dr.Arc] = a
	case "set-transit":
		a := m.arcs[dr.Arc]
		a.Transit = dr.Transit
		m.arcs[dr.Arc] = a
	case "add-node":
		id := int64(m.n)
		m.n++
		return id
	}
	return -1
}

// snapshot builds the canonical graph plus the compact←original arc map.
func (m *sessionMirror) snapshot() (*graph.Graph, map[int64]graph.ArcID) {
	ids := make([]int64, 0, len(m.arcs))
	for id := range m.arcs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	arcs := make([]graph.Arc, len(ids))
	o2c := make(map[int64]graph.ArcID, len(ids))
	for ci, id := range ids {
		arcs[ci] = m.arcs[id]
		o2c[id] = graph.ArcID(ci)
	}
	return graph.FromArcs(m.n, arcs), o2c
}

// check verifies one DeltaResult against a fresh solve of the mirror.
func (m *sessionMirror) check(t *testing.T, label string, res DeltaResult) {
	t.Helper()
	howard, err := core.ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	snap, o2c := m.snapshot()
	want, werr := core.MinimumCycleMean(snap, howard, core.Options{})
	if werr != nil {
		if res.OK {
			t.Fatalf("%s: session answered %s but fresh solve fails: %v", label, res.Value.Rat, werr)
		}
		return
	}
	if !res.OK {
		t.Fatalf("%s: session failed (%+v) but fresh solve gives %s", label, res.Error, want.Mean)
	}
	got := numeric.NewRat(res.Value.Num, res.Value.Den)
	if got.Num() != want.Mean.Num() || got.Den() != want.Mean.Den() {
		t.Fatalf("%s: session λ* = %s, fresh solve of same content says %s", label, got, want.Mean)
	}
	cyc := make([]graph.ArcID, len(res.Cycle))
	for i, orig := range res.Cycle {
		ci, ok := o2c[int64(orig)]
		if !ok {
			t.Fatalf("%s: cycle references dead/unknown arc %d", label, orig)
		}
		cyc[i] = ci
	}
	if err := snap.ValidateCycle(cyc); err != nil {
		t.Fatalf("%s: invalid witness %v: %v", label, res.Cycle, err)
	}
	if snap.CycleWeight(cyc)*got.Den() != got.Num()*int64(len(cyc)) {
		t.Fatalf("%s: witness does not attain λ*", label)
	}
}

// TestSessionLifecycle drives create → stats → delete → 404 and checks the
// initial solve against a direct core solve.
func TestSessionLifecycle(t *testing.T) {
	g := mustRing(t, 5, 3) // 5-cycle, every weight 3 → λ* = 3
	_, ts := newTestServer(t, Config{Workers: 2})

	cr := createSession(t, ts, SessionCreateRequest{Text: graphText(t, g), Certify: true})
	if cr.SessionID == "" {
		t.Fatal("empty session id")
	}
	if cr.Nodes != 5 || cr.Arcs != 5 {
		t.Fatalf("dims = (%d, %d), want (5, 5)", cr.Nodes, cr.Arcs)
	}
	if !cr.Result.OK || cr.Result.Value.Num != 3 || cr.Result.Value.Den != 1 {
		t.Fatalf("initial solve: %+v", cr.Result)
	}
	if !cr.Result.Certified {
		t.Fatal("certify: true session produced an uncertified initial answer")
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/session/" + cr.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	var info SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.SessionID != cr.SessionID || info.Nodes != 5 || info.Engine.Solves != 1 {
		t.Fatalf("session info: %+v", info)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+cr.SessionID, nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/session/" + cr.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status %d: %s", resp.StatusCode, body)
	}
	var eb errorResponse
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Code != CodeUnknownSession {
		t.Fatalf("get after delete: want %s, got %s", CodeUnknownSession, body)
	}
}

// mustRing builds an n-cycle with constant weight.
func mustRing(t testing.TB, n int, w int64) *graph.Graph {
	t.Helper()
	arcs := make([]graph.Arc, n)
	for i := range arcs {
		arcs[i] = graph.Arc{From: graph.NodeID(i), To: graph.NodeID((i + 1) % n), Weight: w, Transit: 1}
	}
	return graph.FromArcs(n, arcs)
}

// TestSessionDeltaStreamEquivalence streams a scripted mix of weight edits,
// insertions, deletions, and an add-node through the NDJSON endpoint and
// cross-checks every answer (value and witness cycle, in stable original arc
// IDs) against a fresh solve of an independently tracked mirror.
func TestSessionDeltaStreamEquivalence(t *testing.T) {
	g := mustRing(t, 4, 10) // arcs 0..3, λ* = 10
	_, ts := newTestServer(t, Config{Workers: 2})
	cr := createSession(t, ts, SessionCreateRequest{Text: graphText(t, g)})
	mirror := newSessionMirror(g)
	st := openDeltaStream(t, ts, cr.SessionID)

	script := []DeltaRequest{
		{Seq: 1, Op: "set-weight", Arc: 2, Weight: -6},            // cheapen the ring
		{Seq: 2, Op: "insert-arc", From: 1, To: 0, Weight: 1},     // 2-cycle 0→1→0, id 4
		{Seq: 3, Op: "set-weight", Arc: 4, Weight: -9},            // make the 2-cycle optimal
		{Seq: 4, Op: "delete-arc", Arc: 4},                        // back to the ring
		{Seq: 5, Op: "add-node"},                                  // node 4, id echo 4
		{Seq: 6, Op: "insert-arc", From: 3, To: 4, Weight: 0},     // id 5: on no cycle
		{Seq: 7, Op: "insert-arc", From: 4, To: 3, Weight: -40},   // id 6: 2-cycle 3↔4
		{Seq: 8, Op: "set-transit", Arc: 6, Transit: 3},           // transit ignored by mean
		{Seq: 9, Op: "insert-arc", From: 0, To: 0, Weight: -1000}, // id 7: dominant self-loop
		{Seq: 10, Op: "delete-arc", Arc: 7},
	}
	for _, dr := range script {
		res := st.roundTrip(t, dr)
		if res.Seq != dr.Seq || res.Op != dr.Op {
			t.Fatalf("echo mismatch: sent (%d, %s), got (%d, %s)", dr.Seq, dr.Op, res.Seq, res.Op)
		}
		wantID := mirror.apply(dr)
		if !res.Applied {
			t.Fatalf("seq %d (%s): not applied: %+v", dr.Seq, dr.Op, res)
		}
		if res.ID != wantID {
			t.Fatalf("seq %d (%s): assigned id %d, mirror says %d", dr.Seq, dr.Op, res.ID, wantID)
		}
		mirror.check(t, fmt.Sprintf("seq %d (%s)", dr.Seq, dr.Op), res)
	}

	// Clean end of stream: close the write side, read the trailer.
	st.w.Close()
	tr := st.readTrailer(t)
	if tr.Draining || tr.Results != len(script) || tr.OK != len(script) || tr.Errors != 0 {
		t.Fatalf("trailer: %+v", tr)
	}
}

// TestSessionDeltaErrors exercises the typed rejection paths: dead arcs and
// unknown ops answer bad_delta and leave both the stream and the graph
// usable; a malformed line ends the stream with a trailer.
func TestSessionDeltaErrors(t *testing.T) {
	g := mustRing(t, 3, 6)
	_, ts := newTestServer(t, Config{Workers: 2})
	cr := createSession(t, ts, SessionCreateRequest{Text: graphText(t, g)})
	st := openDeltaStream(t, ts, cr.SessionID)

	res := st.roundTrip(t, DeltaRequest{Seq: 1, Op: "delete-arc", Arc: 99})
	if res.Applied || res.Error == nil || res.Error.Code != CodeBadDelta {
		t.Fatalf("dead-arc delete: %+v", res)
	}
	res = st.roundTrip(t, DeltaRequest{Seq: 2, Op: "teleport-arc"})
	if res.Applied || res.Error == nil || res.Error.Code != CodeBadDelta {
		t.Fatalf("unknown op: %+v", res)
	}
	res = st.roundTrip(t, DeltaRequest{Seq: 3, Op: "set-weight", Arc: 0, Weight: -3})
	if !res.OK || res.Value.Num != 3 || res.Value.Den != 1 { // (−3+6+6)/3
		t.Fatalf("recovery delta after rejections: %+v", res)
	}

	// Deleting the whole cycle is a valid edit whose re-solve fails typed.
	for i, id := range []int64{0, 1, 2} {
		res = st.roundTrip(t, DeltaRequest{Seq: 4 + int64(i), Op: "delete-arc", Arc: id})
		if !res.Applied {
			t.Fatalf("delete %d not applied: %+v", id, res)
		}
	}
	if res.OK || res.Error == nil || res.Error.Code != CodeAcyclic {
		t.Fatalf("acyclic graph: %+v", res)
	}

	// Malformed framing is fatal: one error line, then the trailer.
	if _, err := st.w.Write([]byte("{not json\n")); err != nil {
		t.Fatal(err)
	}
	raw := st.read(t)
	var bad DeltaResult
	if err := json.Unmarshal(raw, &bad); err != nil || bad.Error == nil || bad.Error.Code != CodeBadRequest {
		t.Fatalf("malformed line answer: %s", raw)
	}
	// 2 rejections + 3 acyclic re-solves + the malformed line = 6 errors;
	// the recovery set-weight is the lone OK line.
	tr := st.readTrailer(t)
	if tr.Draining || tr.Results != 7 || tr.OK != 1 || tr.Errors != 6 {
		t.Fatalf("trailer after malformed line: %+v", tr)
	}
}

// TestSessionUnknownID asserts 404 unknown_session on every per-session
// route.
func TestSessionUnknownID(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/session/nope"},
		{http.MethodDelete, "/v1/session/nope"},
		{http.MethodPost, "/v1/session/nope/deltas"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s: status %d: %s", probe.method, probe.path, resp.StatusCode, body)
		}
	}
}

// TestSessionAcyclicSeedIsRepairable: a session whose seed graph has no
// cycle is still created (typed error in the initial result) and becomes
// solvable once deltas close a cycle.
func TestSessionAcyclicSeedIsRepairable(t *testing.T) {
	g := graph.FromArcs(2, []graph.Arc{{From: 0, To: 1, Weight: 4, Transit: 1}})
	_, ts := newTestServer(t, Config{Workers: 1})
	cr := createSession(t, ts, SessionCreateRequest{Text: graphText(t, g)})
	if cr.Result.OK || cr.Result.Error == nil || cr.Result.Error.Code != CodeAcyclic {
		t.Fatalf("acyclic seed: %+v", cr.Result)
	}
	st := openDeltaStream(t, ts, cr.SessionID)
	res := st.roundTrip(t, DeltaRequest{Op: "insert-arc", From: 1, To: 0, Weight: 2})
	if !res.OK || res.Value.Num != 3 || res.Value.Den != 1 {
		t.Fatalf("after closing the cycle: %+v", res)
	}
}

// TestSessionLimitAndExpiry: the MaxSessions cap answers 429 session_limit
// with Retry-After, and idle sessions past SessionTTL are lazily expired,
// freeing capacity without any background reaper.
func TestSessionLimitAndExpiry(t *testing.T) {
	g := mustRing(t, 3, 1)
	_, ts := newTestServer(t, Config{Workers: 1, MaxSessions: 2, SessionTTL: 80 * time.Millisecond})

	a := createSession(t, ts, SessionCreateRequest{Text: graphText(t, g)})
	createSession(t, ts, SessionCreateRequest{Text: graphText(t, g)})

	data, _ := json.Marshal(SessionCreateRequest{Text: graphText(t, g)})
	resp, err := ts.Client().Post(ts.URL+"/v1/session", "application/json", ioReader(data))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third session: status %d: %s", resp.StatusCode, body)
	}
	var eb errorResponse
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Code != CodeSessionLimit {
		t.Fatalf("third session error: %s", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("session_limit response missing Retry-After")
	}

	// Past the TTL both idle sessions expire lazily on the next create.
	time.Sleep(120 * time.Millisecond)
	cr := createSession(t, ts, SessionCreateRequest{Text: graphText(t, g)})
	if cr.SessionID == a.SessionID {
		t.Fatal("expired session id reused")
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/session/" + a.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expired session still answers: status %d", resp.StatusCode)
	}
}

// TestSessionDrainTerminalFrame is the shutdown-lifecycle regression test:
// an open delta stream must receive a clean terminal frame with
// "draining": true when the server drains, and Drain must return promptly
// instead of wedging on the long-lived connection.
func TestSessionDrainTerminalFrame(t *testing.T) {
	g := mustRing(t, 4, 2)
	s, ts := newTestServer(t, Config{Workers: 2})
	cr := createSession(t, ts, SessionCreateRequest{Text: graphText(t, g)})
	st := openDeltaStream(t, ts, cr.SessionID)

	// Prove the stream is live (and therefore registered in-flight) before
	// draining.
	res := st.roundTrip(t, DeltaRequest{Op: "set-weight", Arc: 0, Weight: 5})
	if !res.OK {
		t.Fatalf("pre-drain delta: %+v", res)
	}

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()

	// The open stream — idle, no delta in flight — must terminate with the
	// draining trailer on its own.
	tr := st.readTrailer(t)
	if !tr.Draining {
		t.Fatalf("trailer not marked draining: %+v", tr)
	}
	if tr.Results != 1 || tr.OK != 1 {
		t.Fatalf("trailer miscounts pre-drain traffic: %+v", tr)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain wedged on an open session stream: %v", err)
	}

	// Post-drain: new session work answers 503 like everything else.
	data, _ := json.Marshal(SessionCreateRequest{Text: graphText(t, g)})
	resp, err := ts.Client().Post(ts.URL+"/v1/session", "application/json", ioReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create during drain: status %d", resp.StatusCode)
	}
}

// TestSessionDoesNotTouchResultCache is the cache-invalidation regression
// test (the staleness half and the poisoning half):
//
//   - Staleness: after a delta, the session's answer must be freshly solved
//     — a cached entry stored for the seed content's fingerprint must never
//     be served for the mutated graph.
//   - Poisoning: session solves must never be stored in the
//     content-addressed cache, even when a delta stream returns the graph to
//     byte-identical seed content; /v1/solve's cache counters must not move.
func TestSessionDoesNotTouchResultCache(t *testing.T) {
	g := mustRing(t, 4, 8) // λ* = 8
	s, ts := newTestServer(t, Config{Workers: 2})
	text := graphText(t, g)

	// Prime the /v1/solve cache: one miss+store, one hit.
	for range 2 {
		status, body := post(t, ts, SolveRequest{Requests: []GraphRequest{{Text: text}}})
		if status != http.StatusOK {
			t.Fatalf("prime: status %d: %s", status, body)
		}
		if res := decodeResults(t, body); !res[0].OK || res[0].Value.Num != 8 {
			t.Fatalf("prime: %+v", res[0])
		}
	}
	primed, enabled := s.CacheStats()
	if !enabled || primed.Misses != 1 || primed.Hits != 1 || primed.Entries != 1 {
		t.Fatalf("priming stats: %+v (enabled %v)", primed, enabled)
	}

	// Same content as the cached entry, now in a session.
	cr := createSession(t, ts, SessionCreateRequest{Text: text})
	if !cr.Result.OK || cr.Result.Value.Num != 8 || cr.Result.Cached {
		t.Fatalf("session initial solve: %+v", cr.Result)
	}
	st := openDeltaStream(t, ts, cr.SessionID)

	// Staleness: the delta changes the answer; serving the seed content's
	// cached λ* = 8 here would be the regression.
	res := st.roundTrip(t, DeltaRequest{Op: "set-weight", Arc: 1, Weight: -12})
	if !res.OK || res.Value.Num != 3 || res.Value.Den != 1 {
		t.Fatalf("post-delta answer stale or wrong (want 3/1): %+v", res)
	}

	// Revert: the session content is again byte-identical to the cached
	// fingerprint. A poisoning implementation would overwrite or re-store
	// the entry; a stale-serving one would skip the solve.
	res = st.roundTrip(t, DeltaRequest{Op: "set-weight", Arc: 1, Weight: 8})
	if !res.OK || res.Value.Num != 8 || res.Value.Den != 1 {
		t.Fatalf("post-revert answer: %+v", res)
	}

	// The cache never heard about any of it.
	after, _ := s.CacheStats()
	if after != primed {
		t.Fatalf("session traffic moved the result cache: before %+v, after %+v", primed, after)
	}

	// And /v1/solve still serves the original entry as a pure hit.
	status, body := post(t, ts, SolveRequest{Requests: []GraphRequest{{Text: text}}})
	if status != http.StatusOK {
		t.Fatalf("post-session solve: status %d", status)
	}
	out := decodeResults(t, body)
	if !out[0].OK || out[0].Value.Num != 8 || !out[0].Cached {
		t.Fatalf("post-session solve not a clean cache hit: %+v", out[0])
	}
	final, _ := s.CacheStats()
	if final.Hits != primed.Hits+1 || final.Misses != primed.Misses || final.Entries != primed.Entries {
		t.Fatalf("post-session stats: %+v, primed %+v", final, primed)
	}
}

// TestSessionVarsBranch checks the /debug/vars "sessions" accounting.
func TestSessionVarsBranch(t *testing.T) {
	g := mustRing(t, 3, 2)
	_, ts := newTestServer(t, Config{Workers: 1})
	cr := createSession(t, ts, SessionCreateRequest{Text: graphText(t, g)})
	st := openDeltaStream(t, ts, cr.SessionID)
	st.roundTrip(t, DeltaRequest{Op: "set-weight", Arc: 0, Weight: 7})
	st.roundTrip(t, DeltaRequest{Op: "delete-arc", Arc: 55}) // typed error
	st.w.Close()
	st.readTrailer(t)

	resp, err := ts.Client().Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Sessions map[string]int64 `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := map[string]int64{"live": 1, "created": 1, "streams": 1, "deltas": 1, "delta_errors": 1}
	for k, v := range want {
		if vars.Sessions[k] != v {
			t.Fatalf("sessions[%q] = %d, want %d (all: %v)", k, vars.Sessions[k], v, vars.Sessions)
		}
	}
}
