// Command mcmd is the batch solve daemon: an HTTP/JSON service answering
// minimum (and maximum) cycle mean and cost-to-time ratio queries over the
// solver stack, with per-request deadlines, bounded-queue backpressure, a
// warm-started session cache for repeat topologies, stateful incremental
// sessions (/v1/session: stream graph deltas, get updated λ* per edit), and
// live observability (/debug/vars metrics, /debug/pprof profiling) on the
// same listener.
//
// Examples:
//
//	mcmd -addr :8355
//	mcmd -addr :8355 -workers 8 -queue 64 -timeout 10s
//	curl -s localhost:8355/v1/solve -d '{"requests":[{"text":"p mcm 2 2\na 1 2 3\na 2 1 5\n"}]}'
//	curl -s localhost:8355/v1/solve -d '{"requests":[{"text":"...","algorithm":"approx","approx_epsilon":0.01}]}'
//
// SIGTERM or SIGINT drains: new requests answer 503 while every accepted
// batch runs to completion (bounded by -drain-timeout), then the process
// exits 0. docs/SERVING.md documents the API and operational semantics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8355", "listen address")
		workers      = flag.Int("workers", 0, "concurrent solves (0 = number of CPUs)")
		queue        = flag.Int("queue", 0, "admission queue beyond the workers (0 = 4x workers); overflow answers 429")
		maxBatch     = flag.Int("max-batch", 64, "graphs per buffered request")
		maxStream    = flag.Int("max-stream-batch", 1<<20, "graphs per NDJSON streaming request")
		cacheEntries = flag.Int("cache", 4096, "result cache capacity in stored results (0 disables the cache)")
		maxBody      = flag.Int64("max-body", 8<<20, "request body byte limit")
		timeout      = flag.Duration("timeout", 30*time.Second, "default per-graph solve budget")
		maxTimeout   = flag.Duration("max-timeout", 2*time.Minute, "cap on client-requested budgets")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		maxSessions  = flag.Int("max-sessions", 64, "live /v1/session sessions; creation beyond answers 429")
		sessionTTL   = flag.Duration("session-ttl", 10*time.Minute, "idle session lifetime before lazy expiry")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight solves on shutdown")
		traceEvents  = flag.Bool("trace", false, "log solver events to stderr")
		statsOnDrain = flag.Bool("stats", true, "print session cache stats to stderr on clean shutdown")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	cfg := serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		MaxBatch:       *maxBatch,
		MaxStreamBatch: *maxStream,
		CacheEntries:   *cacheEntries,
		NoCache:        *cacheEntries <= 0,
		MaxBodyBytes:   *maxBody,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		RetryAfter:     *retryAfter,
		MaxSessions:    *maxSessions,
		SessionTTL:     *sessionTTL,
	}
	if *traceEvents {
		cfg.Tracer = obs.NewLogTracer(os.Stderr)
	}
	if err := run(ctx, *addr, cfg, *drainWait, *statsOnDrain); err != nil {
		fmt.Fprintln(os.Stderr, "mcmd:", err)
		os.Exit(1)
	}
}

// run serves until ctx is canceled (signal), then drains and exits.
func run(ctx context.Context, addr string, cfg serve.Config, drainWait time.Duration, statsOnDrain bool) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return runListener(ctx, ln, cfg, drainWait, statsOnDrain)
}

// runListener serves on an existing listener. Split from run so tests can
// bind an ephemeral port themselves and drive the full signal-to-drain
// lifecycle with their own context.
func runListener(ctx context.Context, ln net.Listener, cfg serve.Config, drainWait time.Duration, statsOnDrain bool) error {
	srv := serve.NewServer(cfg)
	httpServer := &http.Server{Handler: srv}
	fmt.Fprintf(os.Stderr, "mcmd: serving on http://%s (solve: POST /v1/solve, sessions: POST /v1/session, metrics: /debug/vars, pprof: /debug/pprof/)\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Drain: refuse new work, let accepted work finish, then close the
	// listener. Order matters — the serve layer flips to 503 first so
	// clients see backpressure rather than connection resets.
	fmt.Fprintln(os.Stderr, "mcmd: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	shutdownErr := httpServer.Shutdown(drainCtx)
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		drainErr = errors.Join(drainErr, shutdownErr)
	}
	if drainErr != nil {
		return drainErr
	}
	if statsOnDrain {
		plain, certified := srv.SessionStats()
		fmt.Fprintf(os.Stderr, "mcmd: drained clean; session cache: plain %+v, certified %+v\n", plain, certified)
	}
	return nil
}
