package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// startDaemon runs the full daemon lifecycle on an ephemeral port and
// returns its base URL, a cancel that models SIGTERM, and the channel
// carrying runListener's exit error.
func startDaemon(t *testing.T, cfg serve.Config) (url string, sigterm context.CancelFunc, done <-chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- runListener(ctx, ln, cfg, 5*time.Second, false) }()
	t.Cleanup(cancel)
	return "http://" + ln.Addr().String(), cancel, errc
}

func waitHealthy(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDaemonLifecycle boots the daemon, solves a batch over the wire, then
// delivers the shutdown signal and asserts a clean drain (nil exit error).
func TestDaemonLifecycle(t *testing.T) {
	url, sigterm, done := startDaemon(t, serve.Config{Workers: 2})
	waitHealthy(t, url)

	body := `{"requests":[
		{"id":"mean","text":"p mcm 3 3\na 1 2 1\na 2 3 2\na 3 1 6\n"},
		{"id":"ratio","text":"p mcm 2 2\na 1 2 4 2\na 2 1 4 2\n","problem":"ratio"}
	]}`
	resp, err := http.Post(url+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out serve.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(out.Results) != 2 {
		t.Fatalf("status %d, %d results", resp.StatusCode, len(out.Results))
	}
	for _, res := range out.Results {
		if !res.OK || res.Value == nil {
			t.Fatalf("%s: %+v", res.ID, res.Error)
		}
		switch res.ID {
		case "mean": // cycle weight 9, length 3
			if res.Value.Num != 3 || res.Value.Den != 1 {
				t.Fatalf("mean %d/%d, want 3/1", res.Value.Num, res.Value.Den)
			}
		case "ratio": // cycle weight 8, transit 4
			if res.Value.Num != 2 || res.Value.Den != 1 {
				t.Fatalf("ratio %d/%d, want 2/1", res.Value.Num, res.Value.Den)
			}
		}
	}

	// /debug/vars answers on the same listener.
	vresp, err := http.Get(url + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Serve map[string]any `json:"serve"`
	}
	if err := json.NewDecoder(vresp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	vresp.Body.Close()
	if got := vars.Serve["graphs_ok"].(float64); got != 2 {
		t.Fatalf("graphs_ok = %v, want 2", got)
	}

	sigterm()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after signal")
	}

	// The listener is gone after drain.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("daemon still answering after shutdown")
	}
}

// TestDaemonBindFailure pins the error path: binding an already-taken port
// fails fast with the listen error rather than hanging.
func TestDaemonBindFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := run(ctx, ln.Addr().String(), serve.Config{Workers: 1}, time.Second, false); err == nil {
		t.Fatal("expected a bind error on an occupied port")
	}
}
