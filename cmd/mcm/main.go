// Command mcm solves the minimum (or maximum) cycle mean or cost-to-time
// ratio problem on a graph read from a file (or stdin) in the text format
// of internal/graph:
//
//	p mcm <n> <m>
//	a <from> <to> <weight> [transit]
//
// Examples:
//
//	mcm -algo howard graph.txt
//	mcm -algo karp -max graph.txt
//	mcm -ratio -algo burns -critical graph.txt
//	mcmgen -n 1024 -m 3072 | mcm -algo yto -counts
//	mcm -algo approx -epsilon 0.01 -certify=false graph.txt
//	mcm -stream -epsilon 0.01 huge.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/ratio"
	"repro/internal/slack"
)

func main() {
	var (
		algoName = flag.String("algo", "howard", "algorithm: mean solvers "+strings.Join(core.Names(), ",")+
			", or portfolio[:a+b] to race several solvers; ratio solvers "+strings.Join(ratio.Names(), ","))
		useRatio = flag.Bool("ratio", false, "solve the cost-to-time ratio problem instead of the mean problem")
		maximize = flag.Bool("max", false, "maximize instead of minimize")
		counts   = flag.Bool("counts", false, "print operation counts")
		critical = flag.Bool("critical", false, "print the critical cycle arcs")
		dotOut   = flag.String("dot", "", "write a DOT rendering with the critical cycle highlighted to this file")
		eps      = flag.Float64("epsilon", 0, "precision for the approximate algorithms (0 = exact)")
		all      = flag.Bool("all", false, "run every mean algorithm concurrently, cross-check, and print a timing table")
		slackTop = flag.Int("slack", 0, "print the k tightest arcs (criticality/slack report; mean problem only)")
		parallel = flag.Int("parallel", runtime.NumCPU(), "worker goroutines for solving strongly connected components concurrently (1 = sequential)")
		kernel   = flag.Bool("kernel", false, "kernelize each strongly connected component (self-loop extraction, chain contraction, tiny closed forms) before solving")
		certify  = flag.Bool("certify", true, "prove the answer exactly: snap to a bounded-denominator rational and verify optimality with an integer Bellman-Ford feasibility check")
		approxMd = flag.String("approx-mode", "", `approximation scheme for -algo approx: "chkl" (relative, default) or "ap" (additive entropic)`)
		sharpen  = flag.Bool("sharpen", false, "with -algo approx: follow the epsilon run with an exact Lawler pass seeded from the certified interval")
		stream   = flag.Bool("stream", false, "solve approximately from a seekable file without materializing the graph (O(n) memory; needs -epsilon > 0, implies -algo approx)")
		trace    = flag.Bool("trace", false, "log solve events (SCC decomposition, per-component solver runs, certification) to stderr")
		metrics  = flag.Bool("metrics-json", false, "print aggregated solve metrics as JSON to stderr after solving")
	)
	flag.Parse()
	var err error
	switch {
	case *all:
		err = runAll(flag.Args())
	case *slackTop > 0:
		err = runSlack(*slackTop, flag.Args())
	case *stream:
		err = runStream(*eps, *approxMd, *counts, flag.Args())
	default:
		err = run(*algoName, *useRatio, *maximize, *counts, *critical, *dotOut, *eps, *approxMd, *sharpen, *parallel, *kernel, *certify, *trace, *metrics, flag.Args())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcm:", err)
		os.Exit(1)
	}
}

// runSlack prints the criticality report: λ*, the critical subgraph size,
// and the k tightest arcs.
func runSlack(k int, args []string) error {
	var in io.Reader = os.Stdin
	name := "<stdin>"
	if len(args) > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		name = args[0]
	}
	g, err := graph.Read(in)
	if err != nil {
		return err
	}
	howard, err := core.ByName("howard")
	if err != nil {
		return err
	}
	rep, err := slack.Analyze(g, howard)
	if err != nil {
		return err
	}
	fmt.Printf("%s: n=%d m=%d lambda* = %v\n", name, g.NumNodes(), g.NumArcs(), rep.Lambda)
	fmt.Printf("critical: %d arcs over %d nodes\n", len(rep.CriticalArcs), len(rep.CriticalNodes))
	fmt.Printf("%d tightest arcs:\n", k)
	for i, as := range rep.Bottlenecks() {
		if i >= k {
			break
		}
		a := g.Arc(as.Arc)
		fmt.Printf("  %4d -> %-4d w=%-8d slack=%v\n", a.From+1, a.To+1, a.Weight, as.Slack)
	}
	return nil
}

// runAll cross-checks every registered mean algorithm on the input and
// prints a per-algorithm timing table.
func runAll(args []string) error {
	var in io.Reader = os.Stdin
	name := "<stdin>"
	if len(args) > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		name = args[0]
	}
	g, err := graph.Read(in)
	if err != nil {
		return err
	}
	res, err := core.CrossCheck(g, core.All(), core.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("%s: n=%d m=%d\n", name, g.NumNodes(), g.NumArcs())
	fmt.Printf("lambda* = %v (%.6f), all %d algorithms agree exactly\n",
		res.Mean, res.Mean.Float64(), len(res.Elapsed))
	names := core.Names()
	fmt.Printf("%-8s %12s\n", "algo", "time")
	for _, n := range names {
		marker := ""
		if n == res.Winner {
			marker = "  <- fastest"
		}
		fmt.Printf("%-8s %12v%s\n", n, res.Elapsed[n].Round(time.Microsecond), marker)
	}
	return nil
}

// runStream solves approximately from a seekable text file through the
// streaming tier: the file is the graph — it is re-scanned per value-
// iteration pass and never materialized into CSR, so working memory is O(n).
func runStream(eps float64, mode string, counts bool, args []string) error {
	var rs io.ReadSeeker = os.Stdin
	name := "<stdin>"
	if len(args) > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		rs = f
		name = args[0]
	}
	src, err := graph.ReadStream(rs)
	if err != nil {
		return err
	}
	res, err := core.MinimumCycleMeanStream(src, core.Options{Approx: core.ApproxOptions{Epsilon: eps, Mode: mode}})
	if err != nil {
		return err
	}
	fmt.Printf("%s: n=%d m=%d algo=approx (streaming)\n", name, src.NumNodes(), src.NumArcs())
	fmt.Printf("lambda* = %v (%.6f)\n", res.Mean, res.Mean.Float64())
	upper := res.Mean.Float64()
	fmt.Printf("certified: lambda* in [%.6f, %.6f] (error bound %.3g)\n", upper-res.ErrorBound, upper, res.ErrorBound)
	if counts {
		fmt.Println("counts:", res.Counts.String())
	}
	return nil
}

func run(algoName string, useRatio, maximize, counts, critical bool, dotOut string, eps float64, approxMode string, sharpen bool, parallel int, kernel, certify, trace, metricsJSON bool, args []string) error {
	var in io.Reader = os.Stdin
	name := "<stdin>"
	if len(args) > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		name = args[0]
	}
	g, err := graph.Read(in)
	if err != nil {
		return err
	}
	opt := core.Options{Epsilon: eps, Parallelism: parallel, Kernelize: kernel, Certify: certify}
	if algoName == "approx" {
		// The approximation tier reads its tolerance from Options.Approx; the
		// shared -epsilon flag feeds it (note -certify, on by default, makes
		// the run sharpen to exact — pass -certify=false for a raw ε answer).
		opt.Approx = core.ApproxOptions{Epsilon: eps, Mode: approxMode}
		opt.ApproxSharpen = sharpen
		opt.Epsilon = 0
	}

	// Observability sinks both write to stderr so stdout stays a clean answer
	// stream; -trace streams events as they happen, -metrics-json aggregates
	// and prints once after the solve.
	var agg *obs.Metrics
	if trace || metricsJSON {
		var sinks []*obs.Trace
		if trace {
			sinks = append(sinks, obs.NewLogTracer(os.Stderr))
		}
		if metricsJSON {
			agg = obs.NewMetrics()
			sinks = append(sinks, agg.Tracer())
		}
		opt.Tracer = obs.Multi(sinks...)
	}

	var (
		value  string
		cycle  []graph.ArcID
		cts    string
		approx bool
		bound  float64
		cert   *core.Certificate
	)
	if useRatio {
		algo, err := ratio.ByName(algoName)
		if err != nil {
			return err
		}
		var res ratio.Result
		if maximize {
			res, err = ratio.MaximumCycleRatio(g, algo, opt)
		} else {
			res, err = ratio.MinimumCycleRatio(g, algo, opt)
		}
		if err != nil {
			return err
		}
		value = fmt.Sprintf("rho* = %v (%.6f)", res.Ratio, res.Ratio.Float64())
		cycle, cts, approx, cert = res.Cycle, res.Counts.String(), !res.Exact, res.Certificate
	} else {
		algo, err := core.ByName(algoName)
		if err != nil {
			return err
		}
		var res core.Result
		if maximize {
			res, err = core.MaximumCycleMean(g, algo, opt)
		} else {
			res, err = core.MinimumCycleMean(g, algo, opt)
		}
		if err != nil {
			return err
		}
		value = fmt.Sprintf("lambda* = %v (%.6f)", res.Mean, res.Mean.Float64())
		cycle, cts, approx, cert = res.Cycle, res.Counts.String(), !res.Exact, res.Certificate
		bound = res.ErrorBound
	}

	fmt.Printf("%s: n=%d m=%d algo=%s\n", name, g.NumNodes(), g.NumArcs(), algoName)
	fmt.Println(value)
	if approx {
		if bound > 0 {
			fmt.Printf("(approximate: certified error bound %.3g)\n", bound)
		} else {
			fmt.Println("(approximate: epsilon mode)")
		}
	}
	if cert != nil {
		snapped := ""
		if cert.Snapped {
			snapped = ", snapped from float"
		}
		fmt.Printf("certified: witness cycle of %d arcs, no better cycle exists (den <= %d%s)\n",
			len(cert.Witness), cert.MaxDen, snapped)
	}
	if critical && len(cycle) > 0 {
		fmt.Printf("critical cycle (%d arcs):\n", len(cycle))
		for _, id := range cycle {
			a := g.Arc(id)
			fmt.Printf("  %d -> %d  w=%d t=%d\n", a.From+1, a.To+1, a.Weight, a.Transit)
		}
	}
	if counts {
		fmt.Println("counts:", cts)
	}
	if dotOut != "" {
		f, err := os.Create(dotOut)
		if err != nil {
			return err
		}
		defer f.Close()
		hl := make(map[graph.ArcID]bool, len(cycle))
		for _, id := range cycle {
			hl[id] = true
		}
		if err := graph.WriteDOT(f, g, "mcm", hl); err != nil {
			return err
		}
		fmt.Println("wrote", dotOut)
	}
	if agg != nil {
		if err := agg.WriteJSON(os.Stderr); err != nil {
			return err
		}
	}
	return nil
}
