package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// checkGolden compares got against testdata/golden/<name>.txt, or rewrites
// the file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".txt")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run: go test ./cmd/mcm -run Golden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s.\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGoldenOutputs pins the exact CLI output of cmd/mcm for every
// deterministic mode: answer lines, certificates, critical cycles, counts,
// and slack reports. Timing modes (-all) are exercised elsewhere — their
// output is wall-clock dependent and has no golden.
func TestGoldenOutputs(t *testing.T) {
	triangle := filepath.Join("testdata", "triangle.txt")
	ring := filepath.Join("testdata", "ring.txt")
	ratioFile := filepath.Join("testdata", "ratio.txt")

	cases := []struct {
		name string
		fn   func() error
	}{
		{"mean-howard-certified", func() error {
			return run("howard", false, false, true, true, "", 0, "", false, 2, false, true, false, false, []string{triangle})
		}},
		{"mean-karp-kernel", func() error {
			return run("karp", false, false, true, true, "", 0, "", false, 2, true, false, false, false, []string{ring})
		}},
		{"mean-max-lawler", func() error {
			return run("lawler", false, true, false, true, "", 0, "", false, 2, false, false, false, false, []string{ring})
		}},
		{"ratio-howard", func() error {
			return run("howard", true, false, true, true, "", 0, "", false, 2, false, true, false, false, []string{ratioFile})
		}},
		{"ratio-max-burns", func() error {
			return run("burns", true, true, false, false, "", 0, "", false, 2, false, false, false, false, []string{ratioFile})
		}},
		{"slack-report", func() error {
			return runSlack(4, []string{ring})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := capture(t, tc.fn)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.name, out)
		})
	}
}
