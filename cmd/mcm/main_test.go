package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeGraphFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture redirects stdout around fn and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		out, _ := io.ReadAll(r)
		done <- string(out)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out, ferr
}

const triangleSrc = `p mcm 3 3
a 1 2 2
a 2 3 3
a 3 1 4
`

func TestRunMean(t *testing.T) {
	path := writeGraphFile(t, triangleSrc)
	out, err := capture(t, func() error {
		return run("howard", false, false, true, true, "", 0, "", false, 2, false, true, false, false, []string{path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "lambda* = 3 (3.000000)") {
		t.Fatalf("output missing λ*: %s", out)
	}
	if !strings.Contains(out, "critical cycle (3 arcs)") {
		t.Fatalf("output missing cycle: %s", out)
	}
	if !strings.Contains(out, "counts:") {
		t.Fatalf("output missing counts: %s", out)
	}
	if !strings.Contains(out, "certified: witness cycle of 3 arcs") {
		t.Fatalf("output missing certificate line: %s", out)
	}
}

// TestRunCertifyOff pins that -certify=false suppresses the proof.
func TestRunCertifyOff(t *testing.T) {
	path := writeGraphFile(t, triangleSrc)
	out, err := capture(t, func() error {
		return run("howard", false, false, false, false, "", 0, "", false, 2, false, false, false, false, []string{path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "certified:") {
		t.Fatalf("certificate printed with -certify=false: %s", out)
	}
}

func TestRunKernelized(t *testing.T) {
	// A pure cycle contracts to nothing: the closed-form candidate must
	// come back expanded to the original three arcs.
	path := writeGraphFile(t, triangleSrc)
	out, err := capture(t, func() error {
		return run("howard", false, false, false, true, "", 0, "", false, 2, true, true, false, false, []string{path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "lambda* = 3 (3.000000)") {
		t.Fatalf("kernelized λ* wrong: %s", out)
	}
	if !strings.Contains(out, "critical cycle (3 arcs)") {
		t.Fatalf("kernelized cycle not expanded: %s", out)
	}
}

func TestRunMax(t *testing.T) {
	src := `p mcm 2 3
a 1 2 1
a 2 1 1
a 1 1 9
`
	path := writeGraphFile(t, src)
	out, err := capture(t, func() error {
		return run("karp", false, true, false, false, "", 0, "", false, 2, false, true, false, false, []string{path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "lambda* = 9") {
		t.Fatalf("max mean wrong: %s", out)
	}
}

func TestRunRatio(t *testing.T) {
	src := `p mcm 2 2
a 1 2 3 2
a 2 1 5 2
`
	path := writeGraphFile(t, src)
	out, err := capture(t, func() error {
		return run("howard", true, false, false, false, "", 0, "", false, 2, false, true, false, false, []string{path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rho* = 2 (2.000000)") {
		t.Fatalf("ratio wrong: %s", out)
	}
}

func TestRunDOTOutput(t *testing.T) {
	path := writeGraphFile(t, triangleSrc)
	dot := filepath.Join(t.TempDir(), "out.dot")
	if _, err := capture(t, func() error {
		return run("yto", false, false, false, false, dot, 0, "", false, 2, false, true, false, false, []string{path})
	}); err != nil {
		t.Fatal(err)
	}
	content, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(content), "digraph") || !strings.Contains(string(content), "color=red") {
		t.Fatalf("DOT output wrong: %s", content)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeGraphFile(t, triangleSrc)
	if err := run("bogus", false, false, false, false, "", 0, "", false, 2, false, true, false, false, []string{path}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run("howard", false, false, false, false, "", 0, "", false, 2, false, true, false, false, []string{"/does/not/exist"}); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeGraphFile(t, "not a graph\n")
	if err := run("howard", false, false, false, false, "", 0, "", false, 2, false, true, false, false, []string{bad}); err == nil {
		t.Error("malformed file accepted")
	}
	// Acyclic graph → solver error surfaces.
	dag := writeGraphFile(t, "p mcm 2 1\na 1 2 5\n")
	if err := run("howard", false, false, false, false, "", 0, "", false, 2, false, true, false, false, []string{dag}); err == nil {
		t.Error("acyclic graph accepted")
	}
}

// captureStderr redirects stderr around fn and returns what it printed.
func captureStderr(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	done := make(chan string, 1)
	go func() {
		out, _ := io.ReadAll(r)
		done <- string(out)
	}()
	ferr := fn()
	w.Close()
	os.Stderr = old
	out := <-done
	r.Close()
	return out, ferr
}

// TestRunTraceAndMetrics: -trace streams solve events and -metrics-json
// prints an aggregated JSON snapshot, both to stderr (stdout stays a clean
// answer stream).
func TestRunTraceAndMetrics(t *testing.T) {
	path := writeGraphFile(t, triangleSrc)
	errOut, err := captureStderr(t, func() error {
		var runErr error
		out, _ := capture(t, func() error {
			runErr = run("howard", false, false, false, false, "", 0, "", false, 2, false, true, true, true, []string{path})
			return runErr
		})
		if runErr == nil && !strings.Contains(out, "lambda* = 3") {
			t.Errorf("stdout lost the answer: %s", out)
		}
		return runErr
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"scc:",             // decomposition event
		"solver howard",    // per-component solver events
		"certify: pass",    // certification outcome
		`"solver_runs": 1`, // aggregated metrics JSON
	} {
		if !strings.Contains(errOut, want) {
			t.Errorf("stderr missing %q:\n%s", want, errOut)
		}
	}
}

func TestRunAll(t *testing.T) {
	path := writeGraphFile(t, triangleSrc)
	out, err := capture(t, func() error { return runAll([]string{path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "lambda* = 3") || !strings.Contains(out, "fastest") {
		t.Fatalf("runAll output wrong:\n%s", out)
	}
	if err := runAll([]string{"/no/such/file"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunSlack(t *testing.T) {
	path := writeGraphFile(t, triangleSrc)
	out, err := capture(t, func() error { return runSlack(2, []string{path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "lambda* = 3") || !strings.Contains(out, "slack=0") {
		t.Fatalf("slack output wrong:\n%s", out)
	}
	if err := runSlack(2, []string{"/no/such/file"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestRunApprox pins the approximation tier's CLI surface: a raw ε run
// prints the certified bound, and -sharpen (or the default -certify) comes
// back exact.
func TestRunApprox(t *testing.T) {
	path := writeGraphFile(t, triangleSrc)
	out, err := capture(t, func() error {
		return run("approx", false, false, false, false, "", 0.25, "", false, 2, false, false, false, false, []string{path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(approximate: certified error bound") {
		t.Fatalf("epsilon run missing bound line: %s", out)
	}
	out, err = capture(t, func() error {
		return run("approx", false, false, false, false, "", 0.25, "", true, 2, false, true, false, false, []string{path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "lambda* = 3 (3.000000)") {
		t.Fatalf("sharpened run not exact: %s", out)
	}
	if strings.Contains(out, "approximate") {
		t.Fatalf("sharpened run still marked approximate: %s", out)
	}
}

// TestRunStream pins the -stream path: file-backed, approximate-only, with
// the certified interval printed.
func TestRunStream(t *testing.T) {
	path := writeGraphFile(t, triangleSrc)
	out, err := capture(t, func() error {
		return runStream(0.25, "", true, []string{path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "algo=approx (streaming)") {
		t.Fatalf("missing streaming banner: %s", out)
	}
	if !strings.Contains(out, "certified: lambda* in [") {
		t.Fatalf("missing interval line: %s", out)
	}
	if !strings.Contains(out, "counts:") {
		t.Fatalf("missing counts: %s", out)
	}
	// ε = 0 is exact-only territory; the streaming tier must refuse.
	if err := runStream(0, "", false, []string{path}); err == nil {
		t.Fatal("streaming accepted epsilon 0")
	}
}
