// Command mcmfuzz is a differential soak tester: it generates random
// graphs forever (or for -duration), runs every registered algorithm on
// each, and demands exact agreement plus a validated optimality
// certificate for every answer — the strongest form of the paper's
// "uniform implementation" discipline. Small instances are additionally
// checked against the brute-force cycle-enumeration oracle.
//
//	go run ./cmd/mcmfuzz -duration 10s
//	go run ./cmd/mcmfuzz -duration 2m -maxn 64 -negative
//
// Exit status is non-zero on the first discrepancy, with a reproducer
// (the graph in text format) written to the file named by -repro.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/ratio"
	"repro/internal/verify"
)

func main() {
	var (
		duration  = flag.Duration("duration", 10*time.Second, "how long to fuzz")
		maxN      = flag.Int("maxn", 24, "maximum node count per instance")
		seed      = flag.Uint64("seed", uint64(time.Now().UnixNano()), "starting seed")
		negative  = flag.Bool("negative", true, "include negative weights")
		oracleCap = flag.Int("oraclecap", 12, "run the enumeration oracle for n <= this")
		reproPath = flag.String("repro", "mcmfuzz-repro.txt", "where to write a failing instance")
		doRatio   = flag.Bool("ratio", false, "fuzz the cost-to-time ratio solvers instead of the mean solvers")
	)
	flag.Parse()
	var err error
	if *doRatio {
		err = fuzzRatio(*duration, *maxN, *seed, *negative, *oracleCap, *reproPath)
	} else {
		err = fuzz(*duration, *maxN, *seed, *negative, *oracleCap, *reproPath)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcmfuzz:", err)
		os.Exit(1)
	}
}

// fuzzRatio is the MCRP counterpart of fuzz: random transit times in
// [0, 4] (zero-transit arcs included; zero-transit cycles regenerate), all
// ratio algorithms, certificates, and the small-instance oracle.
func fuzzRatio(duration time.Duration, maxN int, seed uint64, negative bool, oracleCap int, reproPath string) error {
	algos := ratio.All()
	deadline := time.Now().Add(duration)
	var instances, oracled, rejected int
	state := seed
	next := func(bound int64) int64 {
		state = state*6364136223846793005 + 1442695040888963407
		return int64((state >> 33) % uint64(bound))
	}

	for time.Now().Before(deadline) {
		n := int(next(int64(maxN-1))) + 2
		m := n + int(next(int64(4*n)))
		minW, maxW := int64(1), int64(1+next(1000))
		if negative && next(2) == 0 {
			minW = -maxW
		}
		base, err := gen.Sprand(gen.SprandConfig{N: n, M: m, MinWeight: minW, MaxWeight: maxW, Seed: state})
		if err != nil {
			return err
		}
		arcs := make([]graph.Arc, base.NumArcs())
		for i, a := range base.Arcs() {
			a.Transit = next(5) // 0..4
			arcs[i] = a
		}
		g := graph.FromArcs(n, arcs)
		instances++

		var ref numeric.Rat
		haveRef := false
		fail := func(format string, args ...any) error {
			f, ferr := os.Create(reproPath)
			if ferr == nil {
				graph.Write(f, g)
				f.Close()
			}
			return fmt.Errorf("ratio instance %d (n=%d m=%d w=[%d,%d]): %s\nreproducer written to %s",
				instances, n, m, minW, maxW, fmt.Sprintf(format, args...), reproPath)
		}
		skip := false
		for _, algo := range algos {
			res, err := algo.Solve(g, core.Options{})
			if errors.Is(err, ratio.ErrNonPositiveTransit) {
				// Zero-transit cycle: a legal rejection every algorithm
				// must agree on.
				skip = true
				continue
			}
			if skip {
				return fail("%s accepted a graph others rejected for zero-transit cycles", algo.Name())
			}
			if strings.HasPrefix(algo.Name(), "expand") && err != nil {
				continue // zero-transit arcs are outside expand's domain
			}
			if err != nil {
				return fail("%s: %v", algo.Name(), err)
			}
			if err := verify.CheckRatioCycleIsOptimal(g, res.Ratio, res.Cycle); err != nil {
				return fail("%s: invalid certificate: %v", algo.Name(), err)
			}
			if !haveRef {
				ref, haveRef = res.Ratio, true
			} else if !res.Ratio.Equal(ref) {
				return fail("%s disagrees: %v vs %v", algo.Name(), res.Ratio, ref)
			}
		}
		if skip {
			rejected++
			continue
		}
		if n <= oracleCap && haveRef {
			want, _, err := verify.BruteForceMinRatio(g)
			if err != nil {
				return fail("oracle: %v", err)
			}
			if !want.Equal(ref) {
				return fail("all algorithms agree on %v but the oracle says %v", ref, want)
			}
			oracled++
		}
	}
	fmt.Printf("mcmfuzz: %d ratio instances × %d algorithms OK (%d oracle-checked, %d zero-transit rejections) in %v\n",
		instances, len(algos), oracled, rejected, duration)
	return nil
}

func fuzz(duration time.Duration, maxN int, seed uint64, negative bool, oracleCap int, reproPath string) error {
	algos := core.All()
	deadline := time.Now().Add(duration)
	var (
		instances int
		oracled   int
	)
	state := seed
	next := func(bound int64) int64 {
		state = state*6364136223846793005 + 1442695040888963407
		return int64((state >> 33) % uint64(bound))
	}

	for time.Now().Before(deadline) {
		n := int(next(int64(maxN-1))) + 2
		m := n + int(next(int64(4*n)))
		minW, maxW := int64(1), int64(1+next(10000))
		if negative && next(2) == 0 {
			minW = -maxW
		}
		g, err := gen.Sprand(gen.SprandConfig{N: n, M: m, MinWeight: minW, MaxWeight: maxW, Seed: state})
		if err != nil {
			return err
		}
		instances++

		var ref numeric.Rat
		haveRef := false
		fail := func(format string, args ...any) error {
			f, ferr := os.Create(reproPath)
			if ferr == nil {
				graph.Write(f, g)
				f.Close()
			}
			return fmt.Errorf("instance %d (n=%d m=%d w=[%d,%d]): %s\nreproducer written to %s",
				instances, n, m, minW, maxW, fmt.Sprintf(format, args...), reproPath)
		}
		for _, algo := range algos {
			res, err := algo.Solve(g, core.Options{})
			if err != nil {
				return fail("%s: %v", algo.Name(), err)
			}
			if !res.Exact {
				return fail("%s returned inexact result under default options", algo.Name())
			}
			if err := verify.CheckCycleIsOptimal(g, res.Mean, res.Cycle); err != nil {
				return fail("%s: invalid certificate: %v", algo.Name(), err)
			}
			if !haveRef {
				ref, haveRef = res.Mean, true
			} else if !res.Mean.Equal(ref) {
				return fail("%s disagrees: %v vs %v", algo.Name(), res.Mean, ref)
			}
		}
		if n <= oracleCap {
			want, _, err := verify.BruteForceMinMean(g)
			if err != nil {
				return fail("oracle: %v", err)
			}
			if !want.Equal(ref) {
				return fail("all algorithms agree on %v but the oracle says %v", ref, want)
			}
			oracled++
		}
	}
	fmt.Printf("mcmfuzz: %d instances × %d algorithms OK (%d oracle-checked) in %v\n",
		instances, len(algos), oracled, duration)
	return nil
}
