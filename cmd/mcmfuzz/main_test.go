package main

import (
	"path/filepath"
	"testing"
	"time"
)

func TestFuzzMeanBriefly(t *testing.T) {
	repro := filepath.Join(t.TempDir(), "repro.txt")
	if err := fuzz(300*time.Millisecond, 10, 42, true, 8, repro); err != nil {
		t.Fatal(err)
	}
}

func TestFuzzRatioBriefly(t *testing.T) {
	repro := filepath.Join(t.TempDir(), "repro.txt")
	if err := fuzzRatio(300*time.Millisecond, 10, 42, true, 8, repro); err != nil {
		t.Fatal(err)
	}
}
