package main

import "testing"

func TestLimitSizes(t *testing.T) {
	sizes := limitSizes(1024)
	if len(sizes) != 10 {
		t.Fatalf("got %d sizes, want 10 (n=512 and n=1024, five densities each)", len(sizes))
	}
	for _, s := range sizes {
		if s[0] > 1024 {
			t.Fatalf("size %v exceeds maxn", s)
		}
		if s[1] < s[0] || s[1] > 3*s[0] {
			t.Fatalf("size %v outside the m/n in [1,3] grid", s)
		}
	}
	if len(limitSizes(100)) != 0 {
		t.Fatal("maxn below 512 must produce an empty grid")
	}
}
