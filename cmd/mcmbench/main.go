// Command mcmbench regenerates the experiment tables of the DAC'99 study
// (see DESIGN.md's experiment index):
//
//	mcmbench -table table2            # E-T2: the running-time grid
//	mcmbench -table mcm               # E-41: MCM value vs graph parameters
//	mcmbench -table heapops           # E-42: KO vs YTO heap operations
//	mcmbench -table iters             # E-43: iteration counts
//	mcmbench -table karp              # E-44: Karp-variant behavior
//	mcmbench -table ranking           # E-45: overall speed ranking
//	mcmbench -table circuits          # E-C : benchmark-circuit family
//	mcmbench -table kernel            # kernelization + warm-start sweep
//	mcmbench -table approx            # streaming approximation tier under an RSS cap
//	mcmbench -table session-delta     # incremental delta re-solve vs cold (gate: 2x)
//	mcmbench -table ratio-exact       # certified exact MCR solvers, ρ* cross-checked bit-identical
//	mcmbench -table engines-2017      # post-1999 engines (madani, bhk) vs the 1999 roster, cross-checked
//	mcmbench -table all               # everything from one sweep
//
// -cpuprofile/-memprofile write pprof profiles of any sweep, so wins (e.g.
// kernelization) are attributable to specific hot paths; see
// docs/ALGORITHMS.md for the workflow.
//
// The full Table 2 grid (n up to 8192, 10 seeds) takes tens of minutes;
// -quick runs a reduced grid (n up to 2048, 3 seeds) in a couple of
// minutes. -verify cross-checks that all algorithms agree exactly on every
// instance while measuring.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux for -serve
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	var (
		table      = flag.String("table", "table2", "which table to regenerate: table2, mcm, heapops, iters, karp, ranking, circuits, heapkinds, variants, ratio, ratio-exact, engines-2017, kernel, approx, session-delta, all")
		quick      = flag.Bool("quick", false, "reduced grid (n <= 2048) and 3 seeds")
		seeds      = flag.Int("seeds", 0, "instances per size (default 10, or 3 with -quick)")
		maxN       = flag.Int("maxn", 0, "limit the grid to sizes with n <= maxn")
		algos      = flag.String("algos", "", "comma-separated algorithm subset (default: the paper's Table 2 columns)")
		timeout    = flag.Duration("timeout", 60*time.Second, "per-instance budget; larger n are N/A once exceeded")
		memLimit   = flag.Int64("memlimit", 256<<20, "D-table memory budget in bytes for Karp/DG/HO (paper machine: 64 MB)")
		verify     = flag.Bool("verify", false, "cross-check all algorithms agree exactly on every instance")
		progress   = flag.Bool("progress", false, "print one line per completed run to stderr")
		jsonOut    = flag.Bool("json", false, "emit the sweep as JSON instead of a table")
		parallel   = flag.Int("parallel", 1, "seed instances solved concurrently per size (negative = NumCPU); results are aggregated deterministically, but per-run timings contend for cores")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile (post-sweep) to this file")
		serve      = flag.String("serve", "", "serve live metrics (/debug/vars) and profiling (/debug/pprof/) on this address, e.g. :8080, while the sweep runs; keeps serving after the sweep completes until interrupted")

		serveLoad   = flag.Bool("serve-load", false, "run the sustained-load serving suite (cache on/off throughput + streaming memory probe) and emit BENCH_serve.json-shaped JSON")
		loadAddr    = flag.String("load-addr", "", "with -serve-load: target an already-running mcmd at host:port instead of self-hosting")
		loadConc    = flag.Int("load-concurrency", 8, "with -serve-load: concurrent client workers")
		loadDur     = flag.Duration("load-duration", 3*time.Second, "with -serve-load: measured wall clock per scenario")
		loadHit     = flag.Float64("load-hit-ratio", 0.9, "with -serve-load: fraction of graphs drawn from the repeated hot pool")
		loadBatch   = flag.Int("load-batch", 8, "with -serve-load: graphs per request")
		loadN       = flag.Int("load-n", 0, "with -serve-load: nodes per generated graph (default 384)")
		loadAlgo    = flag.String("load-algo", "", "with -serve-load: solver the load mix requests (default lawler; howard's warm-start would mask the cache)")
		loadOut     = flag.String("load-out", "", "with -serve-load: write the JSON report to this file instead of stdout")
		loadNoProbe = flag.Bool("load-no-stream-probe", false, "with -serve-load: skip the streaming memory probe")

		approxEps = flag.Float64("approx-epsilon", 0, "with -table approx: tolerance (default 0.02)")
		rssCap    = flag.Uint64("rss-cap", 0, "with -table approx: peak-heap cap in bytes (default 64 MiB, 32 MiB with -quick); violations exit 2")

		checkKernel    = flag.String("check-kernel", "", `assert the conservative kernel-speedup floors over a BENCH_kernel.json file ("-" = stdin), then exit (2 on violation)`)
		minKernSpeedup = flag.Float64("min-kernel-speedup", 1.2, "with -check-kernel: the speedup floor")
	)
	flag.Parse()

	if *checkKernel != "" {
		runCheckKernel(*checkKernel, *minKernSpeedup)
		return
	}

	if *serveLoad {
		runServeLoad(bench.ServeLoadConfig{
			Addr:            *loadAddr,
			Concurrency:     *loadConc,
			Duration:        *loadDur,
			HitRatio:        *loadHit,
			BatchSize:       *loadBatch,
			N:               *loadN,
			Algorithm:       *loadAlgo,
			SkipStreamProbe: *loadNoProbe || *loadAddr != "",
		}, *loadOut)
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcmbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mcmbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcmbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mcmbench:", err)
			}
		}()
	}

	cfg := bench.Config{
		Seeds:       *seeds,
		Timeout:     *timeout,
		MemLimit:    *memLimit,
		Verify:      *verify,
		Parallelism: *parallel,
	}
	if *serve != "" {
		// Aggregate every solver run into expvar-published metrics and expose
		// them, together with net/http/pprof, for live inspection of a running
		// sweep. The listener is bound before the sweep starts (so a scraper
		// never sees a connection refused) and kept open after it completes
		// (so the final counters remain scrapable until interrupted).
		agg := obs.NewMetrics()
		agg.Publish("mcm_solver")
		cfg.Tracer = agg.Tracer()
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcmbench:", err)
			os.Exit(1)
		}
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "mcmbench: serve:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "mcmbench: serving /debug/vars and /debug/pprof/ on http://%s\n", ln.Addr())
		defer func() {
			fmt.Fprintln(os.Stderr, "mcmbench: sweep complete; still serving (interrupt to exit)")
			select {}
		}()
	}
	if *quick {
		if cfg.Seeds == 0 {
			cfg.Seeds = 3
		}
		if *maxN == 0 {
			*maxN = 2048
		}
	}
	if *algos != "" {
		cfg.Algorithms = strings.Split(*algos, ",")
	}
	if *maxN > 0 {
		cfg.Sizes = limitSizes(*maxN)
	}
	if *progress {
		cfg.Progress = os.Stderr
	}

	switch *table {
	case "circuits":
		cases, err := bench.RunCircuits(cfg.Algorithms, cfg.Seeds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcmbench:", err)
			os.Exit(1)
		}
		bench.WriteCircuits(os.Stdout, cases, cfg.Algorithms)
		return
	case "heapkinds":
		rows, err := bench.RunHeapKinds(cfg.Sizes, cfg.Seeds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcmbench:", err)
			os.Exit(1)
		}
		bench.WriteHeapKinds(os.Stdout, rows)
		return
	case "variants":
		rows, err := bench.RunVariants(cfg.Sizes, cfg.Seeds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcmbench:", err)
			os.Exit(1)
		}
		bench.WriteVariants(os.Stdout, rows)
		return
	case "ratio":
		rows, err := bench.RunRatioTable(cfg.Sizes, cfg.Seeds, 4)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcmbench:", err)
			os.Exit(1)
		}
		bench.WriteRatioTable(os.Stdout, rows)
		return
	case "kernel":
		kcfg := bench.KernelConfig{Seeds: cfg.Seeds}
		if *algos != "" {
			kcfg.Algorithm = strings.Split(*algos, ",")[0]
		}
		if *progress {
			kcfg.Progress = os.Stderr
		}
		rep, err := bench.RunKernelSweep(kcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcmbench:", err)
			os.Exit(1)
		}
		if *jsonOut {
			data, err := rep.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcmbench:", err)
				os.Exit(1)
			}
			os.Stdout.Write(data)
			fmt.Println()
			return
		}
		bench.WriteKernel(os.Stdout, rep)
		return
	case "session-delta":
		scfg := bench.SessionConfig{Smoke: *quick}
		if *progress {
			scfg.Progress = os.Stderr
		}
		rep, err := bench.RunSessionDeltaSweep(scfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcmbench:", err)
			os.Exit(1)
		}
		if *jsonOut {
			data, err := rep.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcmbench:", err)
				os.Exit(1)
			}
			os.Stdout.Write(data)
			fmt.Println()
		} else {
			bench.WriteSessionDelta(os.Stdout, rep)
		}
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, "mcmbench: VIOLATION:", v)
		}
		if len(rep.Violations) > 0 {
			os.Exit(2)
		}
		return
	case "engines-2017":
		ecfg := bench.EnginesConfig{Smoke: *quick, Seeds: *seeds}
		if *progress {
			ecfg.Progress = os.Stderr
		}
		rep, err := bench.RunEnginesSweep(ecfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcmbench:", err)
			os.Exit(1)
		}
		if *jsonOut {
			data, err := rep.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcmbench:", err)
				os.Exit(1)
			}
			os.Stdout.Write(data)
			fmt.Println()
		} else {
			bench.WriteEngines(os.Stdout, rep)
		}
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, "mcmbench: VIOLATION:", v)
		}
		if len(rep.Violations) > 0 {
			os.Exit(2)
		}
		return
	case "ratio-exact":
		rcfg := bench.RatioExactConfig{Smoke: *quick, Seeds: *seeds}
		if *progress {
			rcfg.Progress = os.Stderr
		}
		rep, err := bench.RunRatioExactSweep(rcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcmbench:", err)
			os.Exit(1)
		}
		if *jsonOut {
			data, err := rep.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcmbench:", err)
				os.Exit(1)
			}
			os.Stdout.Write(data)
			fmt.Println()
		} else {
			bench.WriteRatioExact(os.Stdout, rep)
		}
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, "mcmbench: VIOLATION:", v)
		}
		if len(rep.Violations) > 0 {
			os.Exit(2)
		}
		return
	case "approx":
		acfg := bench.ApproxConfig{Smoke: *quick, Epsilon: *approxEps, RSSCapBytes: *rssCap}
		if *progress {
			acfg.Progress = os.Stderr
		}
		rep, err := bench.RunApproxSweep(acfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcmbench:", err)
			os.Exit(1)
		}
		if *jsonOut {
			data, err := rep.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcmbench:", err)
				os.Exit(1)
			}
			os.Stdout.Write(data)
			fmt.Println()
		} else {
			bench.WriteApprox(os.Stdout, rep)
		}
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, "mcmbench: VIOLATION:", v)
		}
		if len(rep.Violations) > 0 {
			os.Exit(2)
		}
		return
	}

	rep, err := bench.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcmbench:", err)
		os.Exit(1)
	}
	if *jsonOut {
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcmbench:", err)
			os.Exit(1)
		}
		os.Stdout.Write(data)
		fmt.Println()
		if *verify && len(rep.Mismatches) > 0 {
			os.Exit(2)
		}
		return
	}
	if err := rep.WriteAll(os.Stdout, *table); err != nil {
		fmt.Fprintln(os.Stderr, "mcmbench:", err)
		os.Exit(1)
	}
	if *table == "all" {
		cases, err := bench.RunCircuits(cfg.Algorithms, cfg.Seeds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcmbench:", err)
			os.Exit(1)
		}
		bench.WriteCircuits(os.Stdout, cases, cfg.Algorithms)
	}
	if *verify && len(rep.Mismatches) > 0 {
		os.Exit(2)
	}
}

// runCheckKernel asserts the conservative kernel-speedup floors over a
// recorded (or freshly piped) BENCH_kernel.json.
func runCheckKernel(path string, minSpeedup float64) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcmbench:", err)
		os.Exit(1)
	}
	if err := bench.CheckKernel(data, minSpeedup); err != nil {
		fmt.Fprintln(os.Stderr, "mcmbench:", err)
		os.Exit(2)
	}
	fmt.Printf("kernel bench floors hold (speedup >= %.2fx)\n", minSpeedup)
}

// runServeLoad runs the sustained-load serving suite and writes the report.
func runServeLoad(cfg bench.ServeLoadConfig, outPath string) {
	rep, err := bench.RunServeLoad(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcmbench:", err)
		os.Exit(1)
	}
	data, err := rep.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcmbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if outPath == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mcmbench:", err)
		os.Exit(1)
	}
	for _, sc := range rep.Scenarios {
		fmt.Fprintf(os.Stderr, "mcmbench: %-10s %8.0f graphs/s (%d requests, %d errors)\n", sc.Name, sc.GraphsSec, sc.Requests, sc.Errors)
	}
	if rep.Speedup > 0 {
		fmt.Fprintf(os.Stderr, "mcmbench: cache speedup %.2fx; report written to %s\n", rep.Speedup, outPath)
	}
}

func limitSizes(maxN int) [][2]int {
	var out [][2]int
	for _, n := range []int{512, 1024, 2048, 4096, 8192} {
		if n > maxN {
			continue
		}
		for _, num := range []int{2, 3, 4, 5, 6} {
			out = append(out, [2]int{n, n * num / 2})
		}
	}
	return out
}
