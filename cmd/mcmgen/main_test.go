package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

// captureStdout runs fn with stdout redirected and parses the emitted
// graph.
func captureGraph(t *testing.T, fn func() error) *graph.Graph {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte, 1)
	go func() {
		out, _ := io.ReadAll(r)
		done <- out
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	g, err := graph.Read(strings.NewReader(string(out)))
	if err != nil {
		t.Fatalf("emitted graph unparsable: %v\n%s", err, out)
	}
	return g
}

func TestGenSprand(t *testing.T) {
	g := captureGraph(t, func() error {
		return run("sprand", 50, 150, 1, 100, 7, 4, 64, 24, "", "", false)
	})
	if g.NumNodes() != 50 || g.NumArcs() != 150 {
		t.Fatalf("size %d/%d", g.NumNodes(), g.NumArcs())
	}
	if !graph.IsStronglyConnected(g) {
		t.Fatal("sprand output not strongly connected")
	}
}

func TestGenFamilies(t *testing.T) {
	cases := []struct {
		family string
		n      int
	}{
		{"cycle", 12},
		{"complete", 8},
		{"torus", 16},
		{"multiscc", 40},
	}
	for _, c := range cases {
		g := captureGraph(t, func() error {
			return run(c.family, c.n, 0, 1, 10, 3, 4, 64, 24, "", "", false)
		})
		if g.NumNodes() == 0 || g.NumArcs() == 0 {
			t.Fatalf("%s: empty graph", c.family)
		}
	}
}

func TestGenCircuitWithBenchOut(t *testing.T) {
	benchPath := filepath.Join(t.TempDir(), "c.bench")
	g := captureGraph(t, func() error {
		return run("circuit", 0, 0, 1, 10, 5, 4, 16, 12, "", benchPath, false)
	})
	// Latch graph: host + 16 FFs.
	if g.NumNodes() != 17 {
		t.Fatalf("latch nodes = %d, want 17", g.NumNodes())
	}
	data, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "DFF") {
		t.Fatal("bench file missing DFFs")
	}
	// Round-trip: feed the written netlist back through -bench.
	g2 := captureGraph(t, func() error {
		return run("circuit", 0, 0, 1, 10, 5, 4, 16, 12, benchPath, "", false)
	})
	if g2.NumNodes() != g.NumNodes() || g2.NumArcs() != g.NumArcs() {
		t.Fatalf("round trip changed latch graph: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumArcs(), g.NumNodes(), g.NumArcs())
	}
}

func TestGenErrors(t *testing.T) {
	if err := run("bogus", 10, 0, 1, 10, 1, 4, 64, 24, "", "", false); err == nil {
		t.Error("unknown family accepted")
	}
	if err := run("circuit", 0, 0, 1, 10, 1, 4, 16, 12, "/no/such/file.bench", "", false); err == nil {
		t.Error("missing bench file accepted")
	}
}
