package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// captureText runs fn with stdout redirected and returns the raw bytes
// (unlike captureGraph, which parses them).
func captureText(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte, 1)
	go func() {
		out, _ := io.ReadAll(r)
		done <- out
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	return string(out)
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".txt")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run: go test ./cmd/mcmgen -run Golden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s.\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGoldenOutputs pins the exact emitted graph text per family and seed:
// the generators are seeded PRNG walks, so any drift in generator code or
// the writer shows up as a byte-level diff here.
func TestGoldenOutputs(t *testing.T) {
	cases := []struct {
		name string
		fn   func() error
	}{
		{"sprand-n8-m20-seed3", func() error {
			return run("sprand", 8, 20, -9, 9, 3, 4, 64, 24, "", "", false)
		}},
		{"cycle-n6", func() error {
			return run("cycle", 6, 0, 1, 7, 1, 4, 64, 24, "", "", false)
		}},
		{"torus-n9-seed2", func() error {
			return run("torus", 9, 0, 1, 50, 2, 4, 64, 24, "", "", false)
		}},
		{"multiscc-b2-n8-seed5", func() error {
			return run("multiscc", 8, 24, 1, 30, 5, 2, 64, 24, "", "", false)
		}},
		{"circuit-ffs4-gates3-seed1", func() error {
			return run("circuit", 0, 0, 1, 10, 1, 4, 4, 3, "", "", false)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkGolden(t, tc.name, captureText(t, tc.fn))
		})
	}
}
