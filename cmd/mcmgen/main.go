// Command mcmgen emits workload graphs in the text format consumed by
// cmd/mcm: SPRAND random graphs (the paper's generator), structured
// families, or latch graphs of synthetic sequential circuits.
//
// Examples:
//
//	mcmgen -n 1024 -m 3072 -seed 7 > sprand.txt
//	mcmgen -family torus -n 1024 > torus.txt
//	mcmgen -family circuit -ffs 128 -gates 30 > latch.txt
//	mcmgen -family circuit -ffs 128 -bench netlist.bench > latch.txt
//	mcmgen -n 512 -m 1536 -describe
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		family   = flag.String("family", "sprand", "graph family: sprand, cycle, complete, torus, multiscc, circuit")
		n        = flag.Int("n", 512, "number of nodes (sprand/cycle/complete) or side product (torus)")
		m        = flag.Int("m", 0, "number of arcs (sprand; default 3n)")
		minW     = flag.Int64("wmin", 1, "minimum arc weight")
		maxW     = flag.Int64("wmax", 10000, "maximum arc weight")
		seed     = flag.Uint64("seed", 1, "generator seed")
		blocks   = flag.Int("blocks", 4, "number of SCC blocks (multiscc)")
		ffs      = flag.Int("ffs", 64, "flip-flops (circuit)")
		gates    = flag.Int("gates", 24, "cloud gates per stage (circuit)")
		benchIn  = flag.String("bench", "", "read an ISCAS'89 .bench netlist instead of generating one (circuit)")
		benchOut = flag.String("writebench", "", "also write the generated netlist in .bench format to this file (circuit)")
		describe = flag.Bool("describe", false, "print graph statistics to stderr instead of only the graph")
	)
	flag.Parse()
	if err := run(*family, *n, *m, *minW, *maxW, *seed, *blocks, *ffs, *gates, *benchIn, *benchOut, *describe); err != nil {
		fmt.Fprintln(os.Stderr, "mcmgen:", err)
		os.Exit(1)
	}
}

func run(family string, n, m int, minW, maxW int64, seed uint64, blocks, ffs, gates int, benchIn, benchOut string, describe bool) error {
	var (
		g   *graph.Graph
		err error
	)
	switch family {
	case "sprand":
		if m == 0 {
			m = 3 * n
		}
		g, err = gen.Sprand(gen.SprandConfig{N: n, M: m, MinWeight: minW, MaxWeight: maxW, Seed: seed})
	case "cycle":
		g = gen.Cycle(n, maxW)
	case "complete":
		g = gen.Complete(n, minW, maxW, seed)
	case "torus":
		side := int(math.Sqrt(float64(n)))
		if side < 2 {
			side = 2
		}
		g = gen.Torus(side, side, minW, maxW, seed)
	case "multiscc":
		if m == 0 {
			m = 3 * n
		}
		g, err = gen.MultiSCC(blocks, n/blocks, m/blocks, seed)
	case "circuit":
		var nl *circuit.Netlist
		if benchIn != "" {
			f, ferr := os.Open(benchIn)
			if ferr != nil {
				return ferr
			}
			nl, err = circuit.ParseBench(f)
			f.Close()
		} else {
			nl, err = circuit.Generate(circuit.GenConfig{
				FFs: ffs, CloudGates: gates, MaxFanin: 3,
				Feedback: ffs / 4, PIs: 2 + ffs/16, Seed: seed,
			})
		}
		if err != nil {
			return err
		}
		if benchOut != "" {
			f, ferr := os.Create(benchOut)
			if ferr != nil {
				return ferr
			}
			if err := nl.WriteBench(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		g, err = circuit.LatchGraph(nl)
	default:
		return fmt.Errorf("unknown family %q", family)
	}
	if err != nil {
		return err
	}
	if describe {
		fmt.Fprintln(os.Stderr, graph.Summarize(g))
	}
	return graph.Write(os.Stdout, g)
}
