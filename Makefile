# Convenience targets for the DAC'99 minimum-mean-cycle reproduction.

GO ?= go

.PHONY: all build test test-race bench bench-kernel bench-kernel-check bench-serve bench-approx bench-approx-smoke bench-session bench-session-smoke bench-ratio-exact bench-ratio-exact-smoke bench-engines bench-engines-smoke coverage-gate fuzz fuzz-smoke repro repro-quick cover clean trace-gate serve-smoke serve-e2e

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# Merge gate (also run by CI): the concurrent SCC driver, portfolio
# racing, and pooled workspaces must stay race-clean.
test-race:
	$(GO) test -race ./...

bench: bench-kernel
	$(GO) test -bench=. -benchmem ./...

# Kernelization sweep: kernelized vs raw solves on chain-heavy and SPRAND
# families plus the Session warm-start workload; records BENCH_kernel.json.
bench-kernel:
	$(GO) run ./cmd/mcmbench -table kernel -progress -json > BENCH_kernel.json
	@echo "wrote BENCH_kernel.json"

# Kernelization floor gate (also run by CI): a fresh quick sweep must keep
# the chain-family and warm-start speedups above the conservative 1.2x floor.
bench-kernel-check:
	./scripts/kernel_bench_check.sh

# Streaming approximation-tier sweep: generator-backed solves on graphs up
# to 4.19M arcs under a measured 64 MiB peak-heap cap, with exact-vs-approx
# time/memory/error comparison; records BENCH_approx.json. Exit 2 on a
# violated cap or error bound.
bench-approx:
	$(GO) run ./cmd/mcmbench -table approx -progress -json > BENCH_approx.json
	@echo "wrote BENCH_approx.json"

# CI smoke variant (also run by CI): one 10^6-arc generated graph streamed
# under the 32 MiB cap with an exact cross-check of the certified bound.
bench-approx-smoke:
	$(GO) run ./cmd/mcmbench -table approx -quick -progress

# Incremental-engine sweep: a 2000-node perturbation stream through one
# DynSession, every answer verified bit-identical to a fresh certified
# solve; records BENCH_session.json. Exit 2 on a λ* mismatch or a total
# speedup below the 2x gate.
bench-session:
	$(GO) run ./cmd/mcmbench -table session-delta -progress -json > BENCH_session.json
	@echo "wrote BENCH_session.json"

# CI smoke variant: reduced graph and stream, same correctness oracle.
bench-session-smoke:
	$(GO) run ./cmd/mcmbench -table session-delta -quick -progress

# Exact-ratio-mode comparison: every certified exact MCR solver (howard,
# lawler, dinkelbach, sternbrocot) timed on the same transit-weighted
# SPRAND instances with ρ* cross-checked bit-identical; records
# BENCH_ratio.json. Exit 2 on any disagreement.
bench-ratio-exact:
	$(GO) run ./cmd/mcmbench -table ratio-exact -progress -json > BENCH_ratio.json
	@echo "wrote BENCH_ratio.json"

# CI smoke variant: reduced sizes, same bit-identical cross-check.
bench-ratio-exact-smoke:
	$(GO) run ./cmd/mcmbench -table ratio-exact -quick -progress

# Post-1999 engine comparison: madani (value iteration) and bhk (tightened
# bisection) raced against the DAC'99-era roster on shared instances, every
# certified λ*/ρ* cross-checked bit-identical; records BENCH_engines.json.
# Exit 2 on any disagreement.
bench-engines:
	$(GO) run ./cmd/mcmbench -table engines-2017 -progress -json > BENCH_engines.json
	@echo "wrote BENCH_engines.json"

# CI smoke variant: reduced sizes, same bit-identical cross-check.
bench-engines-smoke:
	$(GO) run ./cmd/mcmbench -table engines-2017 -quick -progress

# Sustained-load serving suite: cache-on vs cache-off throughput on a
# 90%-repeated workload plus the streaming bounded-memory probe; records
# BENCH_serve.json, then the process-level smoke asserts a conservative
# speedup and live /debug/vars hit counters against two real mcmd daemons.
bench-serve:
	$(GO) run ./cmd/mcmbench -serve-load -load-duration 5s -load-out BENCH_serve.json
	./scripts/serve_bench.sh

# Per-package coverage floors (scripts/coverage_floor.txt): fails when any
# package's statement coverage regresses below its checked-in floor. Raise
# floors by hand when a real coverage win lands.
coverage-gate:
	./scripts/coverage_gate.sh

# Differential soak test: every algorithm vs the oracle on random graphs.
fuzz:
	$(GO) run ./cmd/mcmfuzz -duration 30s

# Native coverage-guided fuzzing, 30s per target (same as the CI smoke job).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzGraphRead -fuzztime 30s ./internal/graph
	$(GO) test -run '^$$' -fuzz FuzzSolveDifferential -fuzztime 30s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzApproxDifferential -fuzztime 30s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzKernelEquivalence -fuzztime 30s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzSessionDeltas -fuzztime 30s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzRatioDifferential -fuzztime 30s ./internal/ratio

# Tracing-overhead gate (also run by CI): a disabled tracer must stay
# invisible — zero allocations on the nil-tracer emit path and the solver
# alloc pins unchanged — and the obs event plumbing must emit correctly.
trace-gate:
	$(GO) test -run 'TestNilTraceZeroAllocs|TestEmptyTraceZeroAllocs' -count=1 ./internal/obs
	$(GO) test -run 'AllocsPerOpPinned' -count=1 ./internal/core
	$(GO) test -run 'TestTrace' -count=1 ./internal/core

# Live-serving smoke: mcmbench -serve must expose non-zero solver counters
# on /debug/vars and mount /debug/pprof/ while a sweep runs.
serve-smoke:
	./scripts/serve_smoke.sh

# Batch-service e2e gate (also run by CI): the race-enabled service and
# daemon test suites (oracle answers, typed errors, 429 backpressure,
# deadline expiry, graceful drain, session stress), then the process-level
# load smoke against a real mcmd under SIGTERM and the stateful-session
# protocol smoke (streamed deltas, stable arc IDs, drain terminal frame).
serve-e2e:
	$(GO) test -race -count=1 ./internal/serve/ ./cmd/mcmd/
	$(GO) test -race -count=1 -run 'TestSessionConcurrentStress|TestSessionSolveContextCancel|TestDynSessionConcurrentStress|TestDynSessionSolveContextCancel' ./internal/core/
	./scripts/load_smoke.sh
	./scripts/session_e2e.sh

# Full Table 2 + every observation table (tens of minutes).
repro:
	$(GO) run ./cmd/mcmbench -table all -verify

# Reduced grid (n <= 2048, 3 seeds): a couple of minutes.
repro-quick:
	$(GO) run ./cmd/mcmbench -table all -quick -verify

cover:
	$(GO) test ./internal/... -coverprofile=cover.out
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out mcmfuzz-repro.txt test_output.txt bench_output.txt
